"""Search strategies over the lattice cone, driven by the engine.

Every strategy is a function ``(engine, seed, rest, **params) ->
SearchResult`` registered in :data:`STRATEGIES`; the public
``PartitionMKLSearch.search(strategy=...)`` dispatch resolves names
here.  All strategies score frontier partitions in batches through the
engine's backend, so a concurrent backend overlaps the O(n²) work;
strategies whose future frontier is known up front (``exhaustive``)
additionally hand the next batch to ``engine.prefetch`` so an
overlap-enabled engine materialises upcoming statistics while the
current batch is scored.

* ``exhaustive`` — enumerate the whole cone (Bell-number cost).
* ``chain`` / ``chains`` — the paper's symmetric-chain walks with
  early stopping (linear cost per chain).
* ``beam`` — top-down beam search: start at the coarse two-block seed
  partition, expand all single-block splits of the survivors, keep the
  ``beam_width`` best per level.  An unbounded beam (``beam_width=None``)
  visits the whole cone level by level and therefore reproduces the
  exhaustive optimum.
* ``best_first`` — budgeted best-first search: a max-heap on score,
  expanding the most promising partition's refinements until
  ``max_evaluations`` scores have been spent.
* ``greedy`` — the paper's "smushing" hill climber as an engine
  strategy: start from the finest cone partition and apply the best
  scoring merge of two non-seed blocks until no merge improves
  (:func:`repro.mkl.smush.greedy_smush` keeps the direct-scoring
  reference implementation).

Speculation hooks
-----------------

Sequential strategies are the cluster's weak spot: ``chain`` submits
one score between decisions, ``best_first``/``beam`` one frontier, so
the pipelined socket backend drains while the strategy thinks.  On a
speculation-enabled engine (``speculate=True``) every strategy
therefore *proposes likely next candidates* before its current
decision resolves — the next chain steps for ``chain``/``chains``, the
upcoming batch for ``exhaustive``, expansions of the likeliest next
frontier for ``beam``/``best_first``, the predicted winner's merges
for ``greedy`` — via ``engine.speculate``.  Proposals never touch the
strategy's own control flow (``visited`` sets, budgets, history), so
results are bit-identical to a speculation-off run; they only keep
remote workers saturated between decisions.  See
``docs/strategies.md`` for the full guide.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable, Iterator, Sequence

import numpy as np

from repro.combinatorics.lattice import (
    cone_partitions,
    lift_chain,
    merge_chain,
    principal_chain,
    refinement_moves,
)
from repro.combinatorics.partitions import SetPartition
from repro.engine.core import KernelEvaluationEngine, SearchResult

__all__ = [
    "STRATEGIES",
    "register_strategy",
    "available_strategies",
    "run_strategy",
    "search_exhaustive",
    "search_chains",
    "search_beam",
    "search_best_first",
    "search_greedy",
]

# Frontier partitions scored per backend call; large enough to keep a
# thread pool busy, small enough to respect evaluation caps promptly.
BATCH_SIZE = 32


def _seed_partition(seed: tuple[int, ...], rest: tuple[int, ...]) -> SetPartition:
    blocks = [seed]
    if rest:
        blocks.append(rest)
    return SetPartition(blocks)


def _result(
    engine: KernelEvaluationEngine,
    strategy: str,
    seed_partition: SetPartition,
    history: list[tuple[SetPartition, float]],
) -> SearchResult:
    best_partition, best_score = None, -np.inf
    for partition, score in history:
        if score > best_score:
            best_partition, best_score = partition, score
    assert best_partition is not None
    # Close out speculation first: leftovers become booked waste, and
    # their op costs must be settled before the ledger is read.
    speculation = engine.finish_speculation()
    return SearchResult(
        best_partition=best_partition,
        best_score=best_score,
        n_evaluations=len(history),
        n_gram_computations=engine.n_gram_computations,
        strategy=strategy,
        seed_partition=seed_partition,
        n_matrix_ops=engine.n_matrix_ops,
        n_cv_solves=engine.n_cv_solves,
        n_cv_solves_landmark=engine.n_cv_solves_landmark,
        n_landmark_ops=engine.n_landmark_ops,
        n_factor_computations=engine.n_factor_computations,
        approx=engine.approx,
        history=history,
        wire=engine.wire_stats,
        speculation=speculation,
        trace=engine.take_trace(),
    )


def _batched(iterator: Iterator[SetPartition], size: int) -> Iterator[list[SetPartition]]:
    batch: list[SetPartition] = []
    for item in iterator:
        batch.append(item)
        if len(batch) >= size:
            yield batch
            batch = []
    if batch:
        yield batch


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


def search_exhaustive(
    engine: KernelEvaluationEngine,
    seed: tuple[int, ...],
    rest: tuple[int, ...],
    max_configurations: int | None = None,
) -> SearchResult:
    """Enumerate the full cone below ``(K, S - K)``, batch-scored.

    Runs a one-batch lookahead: the upcoming batch is handed to
    ``engine.prefetch`` (a no-op unless the engine's overlap mode is
    on) and to ``engine.speculate`` (a no-op unless speculation is
    active) before the current batch is scored, so its Gram statistics
    materialise — or its envelopes ship — while the backend scores.
    Only batches that will certainly be scored are proposed — the
    ``max_configurations`` cap is applied first — so neither overlap
    nor speculation ever changes the op totals (speculative hits here
    are 100%: the future frontier is known exactly).
    """
    seed_partition = _seed_partition(seed, rest)
    history: list[tuple[SetPartition, float]] = []
    budget = max_configurations
    batches = _batched(cone_partitions(seed, rest), BATCH_SIZE)

    def next_trimmed() -> list[SetPartition] | None:
        nonlocal budget
        if budget is not None and budget <= 0:
            return None
        batch = next(batches, None)
        if batch is None:
            return None
        if budget is not None:
            batch = batch[:budget]
            budget -= len(batch)
        return batch

    current = next_trimmed()
    while current:
        upcoming = next_trimmed()
        if upcoming:
            engine.prefetch(upcoming)
            engine.speculate(upcoming)
        history.extend(zip(current, engine.score_batch(current)))
        current = upcoming
    return _result(engine, "exhaustive", seed_partition, history)


def search_chains(
    engine: KernelEvaluationEngine,
    seed: tuple[int, ...],
    rest: tuple[int, ...],
    n_chains: int = 1,
    patience: int = 1,
    permutation_seed: int = 0,
    strategy: str = "chains",
) -> SearchResult:
    """Walk full-span symmetric chains top-down with early stopping.

    The first chain is the principal LDD chain; extra chains are merge
    chains over random permutations of ``rest`` (every such chain is
    saturated and full-span, hence symmetric).

    Speculation hook: the walk is the engine's most sequential
    strategy — one score per decision — so before scoring each step
    the next ``speculation_depth`` chain elements (the children of the
    current position along this chain) are proposed.  Unless the early
    stop fires, every one of them is visited, so hits dominate; when
    it does fire, the chain's speculated tail is cancelled (booked
    waste) before the next chain starts.
    """
    if patience < 1:
        raise ValueError("patience must be at least 1")
    seed_partition = _seed_partition(seed, rest)
    if not rest:
        score = engine.score(seed_partition)
        return _result(engine, strategy, seed_partition, [(seed_partition, score)])
    chains = [lift_chain(seed, principal_chain(rest))]
    rng = np.random.default_rng(permutation_seed)
    for _ in range(max(1, n_chains) - 1):
        order = list(rng.permutation(np.asarray(rest)))
        chains.append(lift_chain(seed, merge_chain([int(c) for c in order])))

    history: list[tuple[SetPartition, float]] = []
    scored: dict[SetPartition, float] = {}
    for chain in chains:
        stale = 0
        chain_best = -np.inf
        # Top-down: coarse (few kernels) to fine (many kernels).
        walk = list(reversed(chain))
        for position, partition in enumerate(walk):
            if partition in scored:
                score = scored[partition]
            else:
                if engine.speculation_active:
                    horizon = position + 1 + engine.speculation_depth
                    engine.speculate(
                        p for p in walk[position + 1 : horizon]
                        if p not in scored
                    )
                score = engine.score(partition)
                scored[partition] = score
                history.append((partition, score))
            if score > chain_best:
                chain_best = score
                stale = 0
            else:
                stale += 1
                if stale >= patience:
                    # The speculated continuation of this chain is now
                    # a known misprediction.
                    engine.cancel_speculations()
                    break
    return _result(engine, strategy, seed_partition, history)


def search_beam(
    engine: KernelEvaluationEngine,
    seed: tuple[int, ...],
    rest: tuple[int, ...],
    beam_width: int | None = 3,
    max_depth: int | None = None,
    max_evaluations: int | None = None,
) -> SearchResult:
    """Top-down beam search over the cone.

    Starts at the coarse seed partition ``(K, S - K)`` and descends one
    refinement level at a time: every survivor's non-seed blocks are
    split in all ways, the children are batch-scored, and the best
    ``beam_width`` children seed the next level.  ``beam_width=None``
    keeps every child — the whole cone is then visited level by level,
    so the result matches the exhaustive optimum.

    Cost note: ``beam_width`` bounds *survivors*, not children — a
    survivor with an ``m``-element block contributes ``2^(m-1) - 1``
    scored children, so the first level below the root costs
    ``2^(|S-K|-1) - 1`` evaluations unless capped.  On wide cones
    (rest > ~10) set ``max_evaluations`` (lazily truncates child
    generation, like ``best_first``) or prefer ``best_first``.

    Speculation hook: once a level's scores land, the next level's
    survivors are fully determined (the top-``beam_width`` children),
    so their first refinements — the exact head of the next batch —
    are proposed immediately.  Workers score them while the strategy
    trims the beam, enumerates the remaining children and builds their
    envelopes; survivors displaced by the trim have their stale
    proposals pruned (booked waste).
    """
    if beam_width is not None and beam_width < 1:
        raise ValueError("beam_width must be positive (or None for unbounded)")
    if max_evaluations is not None and max_evaluations < 1:
        raise ValueError("max_evaluations must be positive (or None)")
    seed_partition = _seed_partition(seed, rest)
    frozen = (seed,)
    root_score = engine.score(seed_partition)
    history: list[tuple[SetPartition, float]] = [(seed_partition, root_score)]
    visited: set[SetPartition] = {seed_partition}
    frontier: list[tuple[SetPartition, float]] = [(seed_partition, root_score)]
    depth = 0
    while frontier:
        if max_depth is not None and depth >= max_depth:
            break
        if max_evaluations is not None and len(history) >= max_evaluations:
            break
        if beam_width is not None and len(frontier) > beam_width:
            frontier = sorted(frontier, key=lambda item: -item[1])[:beam_width]

        def fresh_children():
            for partition, _ in frontier:
                for child in refinement_moves(partition, frozen=frozen):
                    if child not in visited:
                        visited.add(child)
                        yield child

        generated = fresh_children()
        if max_evaluations is not None:
            generated = itertools.islice(
                generated, max_evaluations - len(history)
            )
        children = list(generated)
        if not children:
            break
        scores = engine.score_batch(children)
        level = list(zip(children, scores))
        history.extend(level)
        frontier = level
        depth += 1
        if engine.speculation_active:
            _speculate_next_level(engine, level, beam_width, visited, frozen)
    return _result(engine, "beam", seed_partition, history)


def _speculate_next_level(engine, level, beam_width, visited, frozen) -> None:
    """Propose the head of the next level's batch.

    The survivors of the upcoming trim are already determined by the
    scores just received (same sort, same truncation), and the next
    batch enumerates their refinements in survivor order — so the
    first unseen refinements proposed here are exact hits.  Advisory
    only: nothing touches ``visited`` or the budget.
    """
    survivors = level
    if beam_width is not None and len(survivors) > beam_width:
        survivors = sorted(survivors, key=lambda item: -item[1])[:beam_width]
    budget = engine.speculation_depth

    def proposals() -> Iterator[SetPartition]:
        produced = 0
        for partition, _ in survivors:
            for child in refinement_moves(partition, frozen=frozen):
                if child in visited:
                    continue
                yield child
                produced += 1
                if produced >= budget:
                    return

    upcoming = list(proposals())
    engine.prune_speculations(upcoming)
    engine.speculate(upcoming)


def search_best_first(
    engine: KernelEvaluationEngine,
    seed: tuple[int, ...],
    rest: tuple[int, ...],
    max_evaluations: int | None = None,
) -> SearchResult:
    """Budgeted best-first search over the cone.

    Maintains a max-heap of scored partitions; repeatedly expands the
    best one into its unseen refinements (batch-scored) until the heap
    is exhausted or ``max_evaluations`` partitions have been scored.
    The budget includes the root, so ``max_evaluations=1`` scores only
    the seed partition; ``None`` explores the entire cone.

    Speculation hook: after each expansion's scores are pushed, the
    next node to expand is exactly the heap's top — so its unseen
    refinements (the head of the next batch) are proposed right away,
    along with the runner-up's (the following expansion, unless the
    frontier shifts): the top-k frontier expansions of parallel
    best-first search.  Workers score them while the strategy pops,
    enumerates and builds the rest of the batch; proposals invalidated
    by the actual pop order are pruned (booked waste).
    """
    if max_evaluations is not None and max_evaluations < 1:
        raise ValueError("max_evaluations must be positive (or None)")
    seed_partition = _seed_partition(seed, rest)
    frozen = (seed,)
    root_score = engine.score(seed_partition)
    history: list[tuple[SetPartition, float]] = [(seed_partition, root_score)]
    visited: set[SetPartition] = {seed_partition}
    counter = 0  # heap tie-breaker: earlier discoveries pop first
    heap: list[tuple[float, int, SetPartition]] = [(-root_score, counter, seed_partition)]
    while heap:
        if max_evaluations is not None and len(history) >= max_evaluations:
            break
        _, _, current = heapq.heappop(heap)
        fresh = (
            child
            for child in refinement_moves(current, frozen=frozen)
            if child not in visited
        )
        # islice keeps the expansion lazy: a node with a huge block has
        # exponentially many covers, but only the budget's worth are
        # ever constructed and scored.
        if max_evaluations is not None:
            fresh = itertools.islice(fresh, max_evaluations - len(history))
        children = list(fresh)
        if not children:
            continue
        visited.update(children)
        scores = engine.score_batch(children)
        for child, score in zip(children, scores):
            history.append((child, score))
            counter += 1
            heapq.heappush(heap, (-score, counter, child))
        if engine.speculation_active and heap:
            _speculate_expansions(engine, heap, visited, frozen)
    return _result(engine, "best_first", seed_partition, history)


def _speculate_expansions(engine, heap, visited, frozen) -> None:
    """Propose refinements of the next expansion nodes.

    The heap's top is the *certain* next expansion; the runner-up
    follows unless the top's children displace it.  Their unseen
    refinements are the head of the upcoming batches, so proposing
    them now keeps workers busy through the strategy's pop/enumerate/
    build gap.  Advisory only — ``visited`` and the evaluation budget
    are untouched.
    """
    budget = engine.speculation_depth
    candidates = [node for _, _, node in heapq.nsmallest(2, heap)]

    def proposals() -> Iterator[SetPartition]:
        produced = 0
        for node in candidates:
            for refinement in refinement_moves(node, frozen=frozen):
                if refinement in visited:
                    continue
                yield refinement
                produced += 1
                if produced >= budget:
                    return

    upcoming = list(proposals())
    engine.prune_speculations(upcoming)
    engine.speculate(upcoming)


def search_greedy(
    engine: KernelEvaluationEngine,
    seed: tuple[int, ...],
    rest: tuple[int, ...],
    allow_seed_merges: bool = False,
    min_improvement: float = 1e-12,
) -> SearchResult:
    """Best-improvement merge hill climb ("smushing"), batch-scored.

    The paper's greedy lattice navigation as an engine strategy:
    starting from the finest cone configuration (seed block plus
    singletons of ``rest``), every round scores all pairwise merges of
    non-seed blocks in one batch and applies the best strictly
    improving one; the climb stops at a local optimum.  Matches
    :func:`repro.mkl.smush.greedy_smush` (the direct-scoring reference
    implementation) decision for decision, but scores through the
    engine — so backends, sharding and the op ledger all apply.

    Speculation hook: the sequential gap is between rounds — the next
    round's candidates are merges of the winner, unknown until the
    batch resolves.  The moment it does, the winner's own merges (the
    exact head of the next batch) are proposed, so workers score them
    while the strategy enumerates the rest of the round and builds its
    envelopes; at the local optimum the speculated next round is
    cancelled (booked waste).

    Parameters
    ----------
    allow_seed_merges:
        When True the seed block may be merged too, so the climb can
        leave the cone and reach the one-block partition (useful as an
        unconstrained ablation).
    """
    seed_partition = _seed_partition(seed, rest)
    seed_key = tuple(seed)
    current = (
        SetPartition([seed] + [(column,) for column in rest])
        if rest
        else seed_partition
    )
    current_score = engine.score(current)
    history: list[tuple[SetPartition, float]] = [(current, current_score)]
    while current.n_blocks > 1:
        candidates = _merge_candidates(current, seed_key, allow_seed_merges)
        if not candidates:
            break
        scores = engine.score_batch(candidates)
        history.extend(zip(candidates, scores))
        # Best-improvement selection with greedy_smush's exact rule: a
        # candidate must beat the running best by more than
        # ``min_improvement`` to take it, in enumeration order — so
        # near-ties resolve identically to the reference climber.
        best_index = None
        best_seen = current_score
        for index, score in enumerate(scores):
            if score > best_seen + min_improvement:
                best_index, best_seen = index, score
        if best_index is not None:
            current, current_score = candidates[best_index], best_seen
            if engine.speculation_active:
                # The next round's candidates are now fully determined:
                # ship its head while this round's bookkeeping and the
                # next batch's envelope builds proceed.
                upcoming = _merge_candidates(
                    current, seed_key, allow_seed_merges
                )[: engine.speculation_depth]
                engine.prune_speculations(upcoming)
                engine.speculate(upcoming)
        else:
            # Local optimum: anything speculated for the next round is
            # a known misprediction.
            engine.cancel_speculations()
            break
    return _result(engine, "greedy", seed_partition, history)


def _merge_candidates(
    current: SetPartition, seed_key: tuple[int, ...], allow_seed_merges: bool
) -> list[SetPartition]:
    """All single-merge coarsenings of ``current`` (non-seed by default)."""
    candidates = []
    for i, j in itertools.combinations(range(current.n_blocks), 2):
        if not allow_seed_merges and (
            current.blocks[i] == seed_key or current.blocks[j] == seed_key
        ):
            continue
        candidates.append(current.merge_blocks(i, j))
    return candidates


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

StrategyFn = Callable[..., SearchResult]

STRATEGIES: dict[str, StrategyFn] = {
    "exhaustive": search_exhaustive,
    "chain": lambda engine, seed, rest, **kw: search_chains(
        engine, seed, rest, n_chains=1, strategy="chain", **kw
    ),
    "chains": search_chains,
    "beam": search_beam,
    "best_first": search_best_first,
    "greedy": search_greedy,
}


def register_strategy(name: str, fn: StrategyFn, overwrite: bool = False) -> None:
    """Register a custom strategy for the ``strategy=`` dispatch.

    Re-registering an existing name raises unless ``overwrite=True`` —
    silently shadowing a built-in (or a collaborator's plugin) is how
    two experiments end up reporting each other's numbers.
    """
    if not name:
        raise ValueError("strategy name must be non-empty")
    if not overwrite and name in STRATEGIES:
        raise ValueError(
            f"strategy {name!r} is already registered; pass overwrite=True "
            "to replace it"
        )
    STRATEGIES[name] = fn


def available_strategies() -> tuple[str, ...]:
    """Names accepted by :func:`run_strategy` (and the mkl dispatch)."""
    return tuple(sorted(STRATEGIES))


def run_strategy(
    name: str,
    engine: KernelEvaluationEngine,
    seed: Sequence[int],
    rest: Sequence[int],
    **params,
) -> SearchResult:
    """Run a registered strategy by name."""
    try:
        fn = STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; available: {', '.join(available_strategies())}"
        ) from None
    return fn(engine, tuple(seed), tuple(rest), **params)
