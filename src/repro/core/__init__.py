"""The paper's primary contribution, packaged: faceted partition-MKL
learning plus chain-of-trust reporting."""

from repro.core.faceted import FacetedLearner
from repro.core.trust import TrustReport, build_trust_report

__all__ = ["FacetedLearner", "TrustReport", "build_trust_report"]
