"""End-to-end faceted learner: the paper's Sec. III pipeline in one object.

``FacetedLearner`` chains the pieces the paper describes:

1. *dynamic seed selection* — discretise the features, pick the block
   ``K`` with the best rough approximation accuracy of the label
   concept (:mod:`repro.mkl.seed`), unless a seed or known facet
   structure is supplied;
2. *lattice exploration* — search the lower cone of ``(K, S - K)`` for
   the best multiple-kernel partition, by exhaustive enumeration,
   symmetric-chain walk, or greedy smushing;
3. *final model* — train a (least-squares) SVM on the winning combined
   Gram; prediction reuses the per-block kernels.

The learner exposes the chosen partition, the search ledger, and a
:class:`repro.core.trust.TrustReport` so "the human decision-maker"
can see why the configuration was chosen (paper Sec. I.B).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.analytics.lssvm import LSSVC
from repro.combinatorics.partitions import SetPartition
from repro.engine.cache import cross_gram_strip, query_block_diags
from repro.engine.strategies import available_strategies
from repro.kernels.base import as_2d
from repro.kernels.combination import combine_grams, uniform_weights
from repro.kernels.gram import normalize_gram
from repro.kernels.partition_kernel import BlockKernelFactory, default_block_kernel
from repro.mkl.alignf import alignf_weights
from repro.mkl.combiner import alignment_weights
from repro.mkl.partition_search import (
    AlignmentScorer,
    CrossValScorer,
    PartitionMKLSearch,
    SearchResult,
)
from repro.mkl.seed import RoughSeedResult, roughset_seed_block

__all__ = ["FacetedLearner"]


class FacetedLearner:
    """Partition-aware multiple-kernel classifier for faceted IoT data.

    Parameters
    ----------
    strategy:
        ``"chain"`` (linear walk, default), ``"chains"``, ``"greedy"``
        (smushing), ``"beam"`` (top-down beam search), ``"best_first"``
        (evaluation-budgeted best-first), or ``"exhaustive"``
        (Bell-cost enumeration).
    scorer:
        ``"alignment"`` (fast surrogate) or ``"cv"`` (cross-validated
        accuracy), or any callable ``(gram, y) -> float``.
    seed_block:
        Explicit column indices for ``K``; ``None`` selects it by rough
        approximation accuracy.
    views:
        Known facet structure (sequence of column-index tuples).  When
        given, the search starts from this partition's coarsening and
        the seed block is its highest-alignment view.
    backend:
        Evaluation backend for the search (``"serial"``, ``"threads"``,
        ``"processes"``); the process pool requires the alignment
        scorer (it ships scalar statistics, not Grams).
    shards:
        When set (> 1), the search runs over block-row-sharded Gram
        storage and never materialises a full n×n Gram; only the final
        model fit gathers the winning blocks once.  With a
        ``SocketBackend`` *instance* the strips live on the workers
        (placement-aware sharding) and the final gather fetches them
        over the wire.
    workers:
        Worker addresses for ``backend="sockets"`` (``"host:port"``
        strings or ``(host, port)`` pairs).
    backend_options:
        Extra backend-factory options when ``backend`` is a name — for
        ``"sockets"``, the cluster resilience knobs (``secret=``,
        ``heartbeat_interval=``, ``replication=``).
    overlap:
        Materialise upcoming batches' statistics in the background
        while the current batch is scored.
    speculate:
        Strategy-side speculative batching: the search proposes likely
        next candidates before each decision resolves so networked
        workers stay saturated; results are bit-identical, and the
        hit/waste ledger lands on ``search_result_.speculation``.
    speculation_depth:
        Speculation budget and lookahead horizon.
    approx:
        ``"landmarks"`` runs seed selection and the lattice search over
        the low-rank Nyström caches — O(n·m) per block instead of
        O(n²), with CV folds trained in factor space.  The *final*
        model is still fitted on exact Grams of the winning partition
        (one O(n²) pass per winning block), so only the search is
        approximate.  ``None`` (default) keeps everything exact.
    n_landmarks, landmark_seed:
        Landmark count and deterministic selection seed for
        ``approx="landmarks"``.
    facet_parallel:
        Run the per-facet seed-selection statistics (the ``views``
        alignment ranking — the largest remaining serial loop)
        concurrently, one thread per facet, instead of one facet after
        another.  The per-key cache locks make warming thread-safe and
        the reduced scalars are build-order independent, so the chosen
        seed, the search, and every ledger stay bit-identical to the
        sequential path on all backends.  On a shared fleet
        (``SocketBackend`` instance) each facet is registered as a
        sibling tenant of this learner, so fleet introspection shows
        the facets side by side.
    tenant, tenant_weight, tenant_max_queue_depth:
        Run the learner's search as a named tenant of a shared fleet —
        fair-share scheduled envelopes, per-tenant wire ledger,
        namespaced placed strips (:mod:`repro.cluster.tenancy`).
        Ignored by backends without a shared fleet.
    """

    def __init__(
        self,
        strategy: str = "chain",
        scorer: str | Callable = "cv",
        weighting: str = "alignment",
        seed_block: Sequence[int] | None = None,
        views: Sequence[Sequence[int]] | None = None,
        block_kernel: BlockKernelFactory = default_block_kernel,
        estimator_gamma: float = 10.0,
        n_chains: int = 5,
        patience: int = 2,
        seed_max_size: int = 2,
        random_state: int = 0,
        beam_width: int | None = 3,
        max_evaluations: int | None = None,
        backend: str = "serial",
        shards: int | None = None,
        workers=None,
        backend_options: dict | None = None,
        overlap: bool = False,
        speculate: bool = False,
        speculation_depth: int = 4,
        approx: str | None = None,
        n_landmarks: int | None = None,
        landmark_seed: int = 0,
        facet_parallel: bool = False,
        tenant: str | None = None,
        tenant_weight: float = 1.0,
        tenant_max_queue_depth: int | None = None,
    ):
        # Defer to the engine's registry so register_strategy extensions
        # are reachable from the high-level API too (``greedy`` is a
        # registry strategy like every other since the speculation PR).
        if strategy not in available_strategies():
            raise ValueError(
                f"unknown strategy {strategy!r}; available: "
                f"{', '.join(available_strategies())}"
            )
        self.strategy = strategy
        if callable(scorer):
            self._scorer = scorer
        elif scorer == "alignment":
            self._scorer = AlignmentScorer()
        elif scorer == "cv":
            self._scorer = CrossValScorer(n_folds=3, seed=random_state)
        else:
            raise ValueError("scorer must be 'alignment', 'cv' or a callable")
        if weighting not in ("uniform", "alignment", "alignf"):
            raise ValueError(
                "weighting must be 'uniform', 'alignment' or 'alignf'"
            )
        self.weighting = weighting
        self.seed_block = tuple(seed_block) if seed_block is not None else None
        self.views = [tuple(view) for view in views] if views is not None else None
        self.block_kernel = block_kernel
        self.estimator_gamma = float(estimator_gamma)
        self.n_chains = int(n_chains)
        self.patience = int(patience)
        self.seed_max_size = int(seed_max_size)
        self.random_state = int(random_state)
        self.beam_width = beam_width if beam_width is None else int(beam_width)
        self.max_evaluations = (
            max_evaluations if max_evaluations is None else int(max_evaluations)
        )
        self.backend = backend
        self.shards = shards
        self.workers = workers
        self.backend_options = backend_options
        self.overlap = bool(overlap)
        self.speculate = bool(speculate)
        self.speculation_depth = int(speculation_depth)
        if approx not in (None, "landmarks"):
            raise ValueError(f"approx must be None or 'landmarks', got {approx!r}")
        if approx is None and n_landmarks is not None:
            raise ValueError("n_landmarks requires approx='landmarks'")
        self.approx = approx
        self.n_landmarks = n_landmarks
        self.landmark_seed = int(landmark_seed)
        self.facet_parallel = bool(facet_parallel)
        self.tenant = None if tenant is None else str(tenant)
        self.tenant_weight = float(tenant_weight)
        self.tenant_max_queue_depth = tenant_max_queue_depth

        self.partition_: SetPartition | None = None
        self.search_result_: SearchResult | None = None
        self.rough_seed_: RoughSeedResult | None = None
        self.weights_: np.ndarray | None = None
        self._estimator: LSSVC | None = None
        self._train_X: np.ndarray | None = None
        self._train_diags: list[np.ndarray] | None = None

    # ------------------------------------------------------------------

    def _choose_seed(self, X: np.ndarray, y: np.ndarray, cache) -> tuple[int, ...]:
        if self.seed_block is not None:
            return self.seed_block
        if self.views:
            # Use the view best aligned with the labels as the seed
            # facet, ranked from cache scalar statistics — identical
            # argmax to alignment_weights over materialised Grams, but
            # works over the sharded layout without ever gathering a
            # full n×n view Gram.  The cache is the one the search will
            # score through, so view Grams computed here are reused.
            from repro.engine import alignment_weights_from_stats

            stats = cache.stats_cache(np.asarray(y))
            pairs = self._facet_stats(stats)
            weights = alignment_weights_from_stats(
                np.array([a for a, _ in pairs]),
                np.array([m for _, m in pairs]),
                stats.target_norm,
            )
            return tuple(self.views[int(np.argmax(weights))])
        self.rough_seed_ = roughset_seed_block(
            X, y, max_size=self.seed_max_size
        )
        return self.rough_seed_.seed_columns

    def _facet_stats(self, stats) -> list[tuple[float, float]]:
        """Per-view ``(a, m)`` alignment statistics, in view order.

        Sequential by default.  With ``facet_parallel`` each view's
        statistics are computed on its own thread — the caches'
        per-key locks make concurrent warming safe, and the reduced
        scalars do not depend on block build order, so the resulting
        pairs (hence the chosen seed and everything downstream) are
        bit-identical to the sequential loop.
        """
        assert self.views is not None
        if not self.facet_parallel or len(self.views) <= 1:
            return [stats.block_stats(view) for view in self.views]
        import threading

        pairs: list = [None] * len(self.views)
        errors: list[BaseException] = []

        def work(index: int, view: tuple) -> None:
            try:
                pairs[index] = stats.block_stats(view)
            except BaseException as error:  # re-raised on the caller
                errors.append(error)

        threads = [
            threading.Thread(
                target=work, args=(index, view), name=f"facet-{index}"
            )
            for index, view in enumerate(self.views)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return pairs

    def _register_facet_tenants(self) -> None:
        """Announce the facets as sibling tenants of this learner.

        Accounting only — facet statistics ride the placement plane's
        shared residency, so registration makes the concurrent facets
        visible in ``tenant_queue_depths()`` / ``tenant_ledgers()``
        without changing what is computed.  A no-op off the shared
        fleet (no coordinator) or when the run is sequential.
        """
        if not self.facet_parallel or not self.views:
            return
        coordinator = getattr(self.backend, "coordinator", None)
        register = getattr(coordinator, "register_tenant", None)
        if register is None:
            return
        base = self.tenant if self.tenant is not None else "facets"
        for index in range(len(self.views)):
            register(f"{base}:facet{index}", weight=self.tenant_weight)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "FacetedLearner":
        X = as_2d(X)
        y = np.asarray(y)
        self._train_X = X
        search = PartitionMKLSearch(
            scorer=self._scorer,
            weighting=self.weighting,
            block_kernel=self.block_kernel,
            backend=self.backend,
            shards=self.shards,
            workers=self.workers,
            backend_options=self.backend_options,
            overlap=self.overlap,
            speculate=self.speculate,
            speculation_depth=self.speculation_depth,
            approx=self.approx,
            n_landmarks=self.n_landmarks,
            landmark_seed=self.landmark_seed,
            tenant=self.tenant,
            tenant_weight=self.tenant_weight,
            tenant_max_queue_depth=self.tenant_max_queue_depth,
        )
        # One cache serves seed selection, the search, and the final
        # model.  In the sharded layout the first two score over row
        # strips only; the sole full-Gram gathers happen below, once,
        # to train the final model on the winning configuration.
        cache = search._make_cache(X)
        self._register_facet_tenants()
        seed = self._choose_seed(X, y, cache)
        strategy_params: dict = {}
        if self.strategy == "chain":
            strategy_params = {"patience": self.patience}
        elif self.strategy == "chains":
            strategy_params = {
                "n_chains": self.n_chains,
                "patience": self.patience,
                "permutation_seed": self.random_state,
            }
        elif self.strategy == "beam":
            strategy_params = {
                "beam_width": self.beam_width,
                "max_evaluations": self.max_evaluations,
            }
        elif self.strategy == "best_first":
            strategy_params = {"max_evaluations": self.max_evaluations}
        result = search.search(
            X, y, seed, strategy=self.strategy, cache=cache, **strategy_params
        )
        self.search_result_ = result
        self.partition_ = result.best_partition

        if self.approx == "landmarks":
            # The search was approximate; the final model is not.  The
            # winning partition's blocks get exact Grams from a fresh
            # dense cache — b O(n²) passes total, paid once, versus the
            # O(n²)-per-block search the landmark path just avoided.
            from repro.engine.cache import GramCache

            final_cache = GramCache(X, self.block_kernel)
            grams = final_cache.grams_for(self.partition_)
        else:
            grams = cache.grams_for(self.partition_)
        if self.weighting == "uniform":
            self.weights_ = uniform_weights(len(grams))
        elif self.weighting == "alignf":
            self.weights_ = alignf_weights(grams, y)
        else:
            self.weights_ = alignment_weights(grams, y)
        combined = combine_grams(grams, self.weights_, normalize=False)
        self._estimator = LSSVC("precomputed", gamma=self.estimator_gamma)
        self._estimator.fit(combined, y)
        # Cache per-block training self-similarities for cross-Gram
        # normalisation at predict time.
        self._train_diags = [
            np.sqrt(np.clip(np.diag(self.block_kernel(block)(X)), 1e-12, None))
            for block in self.partition_.blocks
        ]
        return self

    # ------------------------------------------------------------------

    def _cross_gram(self, X: np.ndarray) -> np.ndarray:
        # Delegates to the engine's strip evaluator with one "strip"
        # covering the whole training sample — the very same code path
        # the serving plane runs per worker-resident strip, which is
        # what makes served responses bit-identical to this method.
        assert self.partition_ is not None and self._train_X is not None
        assert self.weights_ is not None and self._train_diags is not None
        X = as_2d(X)
        blocks = self.partition_.blocks
        return cross_gram_strip(
            X,
            self._train_X,
            blocks,
            self.weights_,
            self.block_kernel,
            self._train_diags,
            query_block_diags(X, blocks, self.block_kernel),
        )

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed decision scores for new samples."""
        if self._estimator is None:
            raise RuntimeError("fit must be called before predict")
        return self._estimator.decision_function(self._cross_gram(X))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted labels for new samples."""
        if self._estimator is None:
            raise RuntimeError("fit must be called before predict")
        return self._estimator.predict(self._cross_gram(X))

    # ------------------------------------------------------------------

    @property
    def n_kernels(self) -> int:
        """Kernels in the selected configuration."""
        if self.partition_ is None:
            raise RuntimeError("fit must be called first")
        return self.partition_.n_blocks

    def describe(self) -> dict:
        """Summary of the fitted configuration (for logging/reports)."""
        if self.partition_ is None or self.search_result_ is None:
            raise RuntimeError("fit must be called first")
        return {
            "strategy": self.strategy,
            "partition": self.partition_.compact_str(),
            "n_kernels": self.n_kernels,
            "score": self.search_result_.best_score,
            "n_evaluations": self.search_result_.n_evaluations,
            "n_gram_computations": self.search_result_.n_gram_computations,
            "weights": None if self.weights_ is None else self.weights_.tolist(),
            "seed_partition": self.search_result_.seed_partition.compact_str(),
            "approx": self.search_result_.approx,
            "n_landmark_ops": self.search_result_.n_landmark_ops,
            "n_cv_solves": self.search_result_.n_cv_solves,
            "n_cv_solves_landmark": self.search_result_.n_cv_solves_landmark,
        }
