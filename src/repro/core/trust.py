"""Chain-of-trust reports for the human decision maker.

The paper's stated goal (Sec. I.B) is an integrated design giving the
decision maker "a clear understanding of the entire data pipeline to
ground [their] level of trust in the outcome": (i) certifiable quality,
(ii) a foundation for a chain of trust, (iii) a lever for constraints.
A :class:`TrustReport` assembles that understanding from the artefacts
the rest of the library already produces: the pipeline's uncertainty
ledger and stage provenance, the learner's configuration and search
ledger, and a held-out veracity estimate of the final model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analytics.metrics import accuracy_score
from repro.pipeline.composition import PipelineRun

__all__ = ["TrustReport", "build_trust_report"]


@dataclass
class TrustReport:
    """Everything the decision maker should see before trusting a model."""

    pipeline_summary: dict
    stage_trail: list[dict]
    model_description: dict
    veracity: dict
    warnings: list[str] = field(default_factory=list)

    @property
    def trust_score(self) -> float:
        """A [0, 1] roll-up: held-out accuracy damped by declared damage.

        Deliberately simple and monotone: more declared missingness and
        variance mean a lower score for the same accuracy, so hiding
        perturbations (not declaring them) would *inflate* trust — the
        exact failure mode the paper warns about, made visible.
        """
        accuracy = self.veracity.get("holdout_accuracy", 0.0)
        missingness = self.pipeline_summary.get("total_missingness", 0.0)
        variance = self.pipeline_summary.get("total_variance", 0.0)
        damping = (1.0 - missingness) / (1.0 + variance)
        return float(np.clip(accuracy * damping, 0.0, 1.0))

    def render(self) -> str:
        """Human-readable report."""
        lines = ["=== Chain-of-trust report ==="]
        lines.append("-- pipeline --")
        for key, value in self.pipeline_summary.items():
            lines.append(f"  {key}: {value}")
        lines.append("-- stages --")
        for stage in self.stage_trail:
            lines.append(
                f"  {stage['name']} ({stage['kind']}): cost={stage['cost']:.2f}"
                f" missing {stage['missing_before']:.1%} -> {stage['missing_after']:.1%}"
            )
        lines.append("-- model --")
        for key, value in self.model_description.items():
            lines.append(f"  {key}: {value}")
        lines.append("-- veracity --")
        for key, value in self.veracity.items():
            lines.append(f"  {key}: {value}")
        if self.warnings:
            lines.append("-- warnings --")
            for warning in self.warnings:
                lines.append(f"  ! {warning}")
        lines.append(f"trust score: {self.trust_score:.3f}")
        return "\n".join(lines)


def build_trust_report(
    run: PipelineRun,
    learner,
    X_holdout: np.ndarray,
    y_holdout: np.ndarray,
    probabilities: np.ndarray | None = None,
) -> TrustReport:
    """Assemble the report from a pipeline run and a fitted learner.

    ``learner`` needs ``predict`` and (optionally) ``describe``.  When
    ``probabilities`` (P(positive class) on the holdout) are supplied —
    e.g. from :class:`repro.analytics.KernelLogisticRegression` or a
    Platt-scaled margin — the report includes calibration diagnostics,
    the paper's "information on the veracity of its predictions".
    """
    predictions = learner.predict(X_holdout)
    holdout_accuracy = accuracy_score(y_holdout, predictions)
    summary = run.ledger.summary()
    stage_trail = [
        {
            "name": report.name,
            "kind": report.kind,
            "cost": report.cost,
            "missing_before": report.quality.get("missing_rate_before", 0.0),
            "missing_after": report.quality.get("missing_rate_after", 0.0),
        }
        for report in run.reports
    ]
    model_description = (
        learner.describe() if hasattr(learner, "describe") else {"type": type(learner).__name__}
    )
    warnings: list[str] = []
    if summary["total_missingness"] > 0.3:
        warnings.append(
            "more than 30% of cells were declared missing upstream;"
            " imputation bias is likely material"
        )
    if "MNAR" in summary["mechanisms"]:
        warnings.append(
            "missing-not-at-random mechanism declared: imputed values are"
            " systematically biased, accuracy estimates may be optimistic"
        )
    if summary["total_bias"] != 0.0:
        warnings.append("uncorrected sensor bias declared upstream")
    final_missing = run.bundle.missing_rate
    if final_missing > 0:
        warnings.append(
            f"analytics input still contains {final_missing:.1%} missing cells"
        )
    veracity: dict = {
        "holdout_accuracy": holdout_accuracy,
        "n_holdout": int(np.asarray(y_holdout).size),
    }
    if probabilities is not None:
        from repro.analytics.calibration import calibration_report

        calibration = calibration_report(y_holdout, probabilities)
        veracity["ece"] = calibration.ece
        veracity["brier"] = calibration.brier
        veracity["mean_confidence"] = calibration.mean_confidence
        if not calibration.well_calibrated:
            warnings.append(
                f"confidence is mis-calibrated (ECE {calibration.ece:.1%});"
                " reported probabilities overstate or understate veracity"
            )
    return TrustReport(
        pipeline_summary=summary,
        stage_trail=stage_trail,
        model_description=model_description,
        veracity=veracity,
        warnings=warnings,
    )
