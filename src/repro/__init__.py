"""repro — reproduction of "Toward IoT-friendly Learning Models"
(Damiani, Gianini, Ceci, Malerba; ICDCS 2018).

The package implements the paper's two pillars and every substrate they
rest on:

* **Structural awareness** — partition-lattice-driven multiple kernel
  learning over faceted IoT feature sets (``repro.combinatorics``,
  ``repro.roughsets``, ``repro.kernels``, ``repro.mkl``,
  ``repro.multiview``, ``repro.core``).
* **Adversarial composition** — game-theoretic modelling of the whole
  acquisition / preparation / analytics pipeline (``repro.pipeline``,
  ``repro.games``, ``repro.iot``).
"""

__version__ = "1.0.0"

from repro.core import FacetedLearner, TrustReport, build_trust_report

__all__ = ["FacetedLearner", "TrustReport", "build_trust_report", "__version__"]
