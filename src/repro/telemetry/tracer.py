"""Span tracer: nested timed spans with structured attributes.

Design constraints, in priority order:

1. **Zero overhead when off.** Instrumentation sits on hot paths
   (batch scoring, ticket routing, serve fan-outs).  The tracer is a
   process-global singleton whose ``enabled`` attribute is a plain
   bool; when it is ``False``, :meth:`Tracer.span` returns a shared
   no-op context manager (no allocation), :meth:`Tracer.event` and
   :meth:`Tracer.record_span` return immediately, and the truly hot
   call sites additionally guard with ``if tracer.enabled:`` so not
   even an argument tuple is built.  Tracing never mutates any state
   the computation reads, so results are bit-identical on or off.

2. **Thread-safe.** The engine, coordinator, heartbeat monitor,
   worker connection threads and serving load generators all record
   concurrently; the record buffer is guarded by a lock and every
   record is an immutable-by-convention plain dict.

3. **Exportable.** Records use Chrome-trace vocabulary directly
   (``ph`` "X" complete spans / "i" instant events, microsecond
   ``ts``/``dur``) so export is a thin serialisation pass
   (:mod:`repro.telemetry.export`).

Record shape (plain dicts, JSON-serialisable)::

    {"ph": "X", "name": ..., "cat": ..., "ts": µs, "dur": µs,
     "pid": ..., "tid": ..., "args": {...}}      # timed span
    {"ph": "i", "name": ..., "cat": ..., "ts": µs,
     "pid": ..., "tid": ..., "args": {...}}      # instant event

Timestamps are microseconds measured with ``time.perf_counter()``
relative to the tracer's epoch (reset by :meth:`Tracer.clear`), so
traces from one process are internally consistent; cross-process
alignment is out of scope (each worker exports its own timeline).
"""

from __future__ import annotations

import functools
import os
import threading
import time
from typing import Any, Callable, Iterator

__all__ = [
    "Tracer",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "tracing_enabled",
]

# Default cap on buffered records; beyond it new records are dropped
# (and counted) rather than growing memory without bound during
# long-lived serving sessions.
DEFAULT_MAX_RECORDS = 200_000


class _NullSpan:
    """Shared no-op context manager returned when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        """No-op attribute setter (mirrors :class:`_Span.set`)."""


_NULL_SPAN = _NullSpan()


class _Span:
    """Live timed span; append-on-exit so nesting needs no stack."""

    __slots__ = ("_tracer", "name", "cat", "args", "_t0")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        t1 = time.perf_counter()
        self._tracer._append_span(self.name, self.cat, self._t0, t1, self.args)

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered mid-span (e.g. result sizes)."""
        self.args.update(attrs)


class Tracer:
    """Append-only span/event recorder with an on/off switch.

    All methods are safe to call from any thread.  When ``enabled``
    is ``False`` every recording method is a no-op; flipping it on
    mid-process starts recording immediately (existing records are
    kept unless :meth:`clear` is called).
    """

    def __init__(self, max_records: int = DEFAULT_MAX_RECORDS):
        self.enabled = False
        self.max_records = max_records
        self._lock = threading.Lock()
        self._records: list[dict] = []
        self._epoch = time.perf_counter()
        self._dropped = 0

    # -- control ---------------------------------------------------------

    def enable(self, clear: bool = False) -> "Tracer":
        if clear:
            self.clear()
        self.enabled = True
        return self

    def disable(self) -> "Tracer":
        self.enabled = False
        return self

    def clear(self) -> None:
        """Drop all records and reset the timestamp epoch."""
        with self._lock:
            self._records = []
            self._dropped = 0
            self._epoch = time.perf_counter()

    @property
    def n_dropped(self) -> int:
        """Records dropped because the buffer hit ``max_records``."""
        return self._dropped

    # -- recording -------------------------------------------------------

    def span(self, name: str, cat: str = "repro", **attrs: Any):
        """Context manager timing a span; no-op when disabled.

        Usage::

            with tracer.span("engine.score_batch", n=len(batch)):
                ...

        Hot paths should guard with ``if tracer.enabled:`` to avoid
        even building ``attrs``; when they don't, the disabled cost is
        one attribute check plus the kwargs dict.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, cat, attrs)

    def event(self, name: str, cat: str = "repro", **attrs: Any) -> None:
        """Record an instant event (Chrome ``ph: "i"``)."""
        if not self.enabled:
            return
        now = time.perf_counter()
        rec = {
            "ph": "i",
            "name": name,
            "cat": cat,
            "ts": self._us(now),
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "args": attrs,
        }
        self._push(rec)

    def record_span(
        self,
        name: str,
        start: float,
        end: float,
        cat: str = "repro",
        **attrs: Any,
    ) -> None:
        """Record a completed span from explicit ``perf_counter`` stamps.

        Used where a span's start and end happen on different threads
        (e.g. a cluster ticket: submitted by the strategy thread,
        consumed by the waiter) so a context manager can't bracket it.
        """
        if not self.enabled:
            return
        self._append_span(name, cat, start, end, attrs)

    def trace(self, name: str, cat: str = "repro") -> Callable:
        """Decorator recording one span per call of the wrapped function."""

        def decorate(fn: Callable) -> Callable:
            @functools.wraps(fn)
            def wrapper(*a: Any, **kw: Any):
                if not self.enabled:
                    return fn(*a, **kw)
                with self.span(name, cat=cat):
                    return fn(*a, **kw)

            return wrapper

        return decorate

    # -- reading ---------------------------------------------------------

    def cursor(self) -> int:
        """Opaque position in the record stream (pass to :meth:`since`)."""
        with self._lock:
            return len(self._records)

    def since(self, cursor: int) -> list[dict]:
        """Records appended after ``cursor`` (a :meth:`cursor` value)."""
        with self._lock:
            return list(self._records[cursor:])

    def records(self) -> list[dict]:
        """Snapshot of all buffered records."""
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __iter__(self) -> Iterator[dict]:
        return iter(self.records())

    # -- export conveniences ---------------------------------------------

    def chrome_trace(self) -> dict:
        from repro.telemetry.export import chrome_trace

        return chrome_trace(self.records())

    def write_chrome_trace(self, path: str) -> str:
        from repro.telemetry.export import write_chrome_trace

        return write_chrome_trace(path, self.records())

    def write_jsonl(self, path: str) -> str:
        from repro.telemetry.export import write_jsonl

        return write_jsonl(path, self.records())

    def report(self) -> str:
        from repro.telemetry.export import report_records

        return report_records(self.records())

    # -- internals -------------------------------------------------------

    def _us(self, t: float) -> float:
        # Clamp at the epoch: a span straddling clear() (or explicit
        # stamps taken before it) must not produce a negative ts, which
        # trace viewers reject.
        return max(0.0, (t - self._epoch) * 1e6)

    def _append_span(
        self, name: str, cat: str, start: float, end: float, args: dict
    ) -> None:
        rec = {
            "ph": "X",
            "name": name,
            "cat": cat,
            "ts": self._us(start),
            "dur": max(0.0, (end - start) * 1e6),
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "args": args,
        }
        self._push(rec)

    def _push(self, rec: dict) -> None:
        with self._lock:
            if len(self._records) >= self.max_records:
                self._dropped += 1
                return
            self._records.append(rec)


_GLOBAL_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer every instrumented module records to."""
    return _GLOBAL_TRACER


def enable_tracing(clear: bool = False) -> Tracer:
    """Switch the global tracer on (optionally clearing old records)."""
    return _GLOBAL_TRACER.enable(clear=clear)


def disable_tracing() -> Tracer:
    """Switch the global tracer off (records are kept for export)."""
    return _GLOBAL_TRACER.disable()


def tracing_enabled() -> bool:
    return _GLOBAL_TRACER.enabled
