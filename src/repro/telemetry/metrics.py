"""Unified metrics registry: counters, gauges, histograms with labels.

Two layers:

* **Plain-dict helpers** — :func:`merge_counts` and
  :func:`ledger_delta` — the primitives every wire/op ledger in the
  repo shares.  The coordinator, the process-pool backend and the
  socket backend all accumulate ``{key: int}`` ledgers; merging and
  baselining them used to be hand-rolled at each site with identical
  loops, and — worse — with implicit per-site knowledge of which keys
  are *gauges* (point-in-time samples like ``n_live_workers``) versus
  *counters* (cumulative like ``envelope_bytes_out``).  The kind
  tables below (:data:`WIRE_LEDGER_KINDS`, :data:`OP_LEDGER_KINDS`,
  :data:`SPECULATION_LEDGER_KINDS`, :data:`SERVING_LEDGER_KINDS`) make
  that knowledge explicit and single-sourced.

* **:class:`MetricsRegistry`** — a thread-safe registry of named,
  labelled counters / gauges / histograms behind one ``snapshot()``
  surface, with a kind-aware ``merge`` (counters and histogram
  aggregates sum; gauges take the most recent sample).  ``absorb``
  ingests any of the repo's ad-hoc ledger dicts, and
  :func:`result_metrics` converts a whole ``SearchResult`` — the
  legacy ``result.*`` fields stay bit-identical; the registry is a
  read-only *view* over them.

Merge semantics (the ``SearchResult.wire`` fix)
-----------------------------------------------

A **counter** only ever increases; merging ledgers from several
sources (workers, links, backends) or several time windows **sums**
it, and a per-search value is the **delta** against a baseline
snapshot taken when the search began.  A **gauge** is a sample of
current state; merging keeps the **latest** sample (for plain-dict
merges, the last source wins) and baselining leaves it untouched —
subtracting a baseline from ``n_live_workers`` would be meaningless.
``strip_bytes_resident`` / ``strip_bytes_resident_max_worker`` are
high-water marks: resident bytes only grow during a search (strips
are never dropped mid-search), so the fleet-wide *sum* is booked as a
counter-like total while the *max-worker* figure is a gauge sample.
Histograms merge by combining their ``(count, total, min, max)``
summaries.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Mapping

__all__ = [
    "KIND_COUNTER",
    "KIND_GAUGE",
    "KIND_HISTOGRAM",
    "MetricsRegistry",
    "OP_LEDGER_KINDS",
    "SERVING_LEDGER_KINDS",
    "SPECULATION_LEDGER_KINDS",
    "TENANT_LEDGER_KINDS",
    "WIRE_LEDGER_KINDS",
    "ledger_delta",
    "merge_counts",
    "result_metrics",
    "tenant_metrics",
    "wire_gauge_keys",
]

KIND_COUNTER = "counter"
KIND_GAUGE = "gauge"
KIND_HISTOGRAM = "histogram"

# ---------------------------------------------------------------------------
# Kind tables: every ad-hoc ledger key in the repo, tagged.
# ---------------------------------------------------------------------------

#: ``SearchResult.wire`` / ``Coordinator.wire_stats()`` /
#: ``SocketBackend.wire_stats()`` / ``ProcessPoolBackend.wire_stats()``
#: keys.  Unlisted keys default to counters (loud in tests, safe in
#: the field: a new cumulative byte/op counter merges correctly by
#: default, whereas a new gauge must be declared here).
WIRE_LEDGER_KINDS: dict[str, str] = {
    # fleet shape: point-in-time samples
    "n_workers": KIND_GAUGE,
    "n_live_workers": KIND_GAUGE,
    # tenancy: the tenant view's configuration/backlog samples ride the
    # wire ledger (``TenantBackend.wire_stats``) next to its counters
    "tenant_weight": KIND_GAUGE,
    "tenant_queue_depth": KIND_GAUGE,
    "n_tenant_rejected": KIND_COUNTER,
    "n_tenant_resets": KIND_COUNTER,
    # per-worker residency high-water mark: a sample, not a flow
    "strip_bytes_resident_max_worker": KIND_GAUGE,
    # fleet-wide resident total: monotone during a search (strips are
    # never dropped mid-search), booked as a cumulative total
    "strip_bytes_resident": KIND_COUNTER,
    # cumulative event counts
    "n_tasks": KIND_COUNTER,
    "n_results": KIND_COUNTER,
    "n_reassigned": KIND_COUNTER,
    "n_reconnect_rounds": KIND_COUNTER,
    "n_heartbeats": KIND_COUNTER,
    "n_evicted": KIND_COUNTER,
    "n_speculative_tasks": KIND_COUNTER,
    "n_discarded_results": KIND_COUNTER,
    "n_requests": KIND_COUNTER,
    "n_gathers": KIND_COUNTER,
    "n_promotions": KIND_COUNTER,
    "n_replicated_strips": KIND_COUNTER,
    "n_replication_failures": KIND_COUNTER,
    "n_strip_rebuilds": KIND_COUNTER,
    # elasticity: joins admitted and strips migrated by rebalance plans
    "n_joins": KIND_COUNTER,
    "n_rebalances": KIND_COUNTER,
    "n_rebalanced_strips": KIND_COUNTER,
    # cumulative byte flows, per wire bucket
    "envelope_bytes_out": KIND_COUNTER,
    "envelope_bytes_in": KIND_COUNTER,
    "serve_bytes_out": KIND_COUNTER,
    "serve_bytes_in": KIND_COUNTER,
    "placement_bytes_out": KIND_COUNTER,
    "placement_bytes_in": KIND_COUNTER,
    "heartbeat_bytes_out": KIND_COUNTER,
    "heartbeat_bytes_in": KIND_COUNTER,
    "replication_bytes_out": KIND_COUNTER,
    "replication_bytes_in": KIND_COUNTER,
    "rebalance_bytes_out": KIND_COUNTER,
    "rebalance_bytes_in": KIND_COUNTER,
    "telemetry_bytes_out": KIND_COUNTER,
    "telemetry_bytes_in": KIND_COUNTER,
    "auth_bytes_out": KIND_COUNTER,
    "auth_bytes_in": KIND_COUNTER,
    "factor_bytes_shipped": KIND_COUNTER,
}

#: Scalar op counters on ``SearchResult`` itself.
OP_LEDGER_KINDS: dict[str, str] = {
    "n_evaluations": KIND_COUNTER,
    "n_gram_computations": KIND_COUNTER,
    "n_matrix_ops": KIND_COUNTER,
    "n_cv_solves": KIND_COUNTER,
    "n_cv_solves_landmark": KIND_COUNTER,
    "n_landmark_ops": KIND_COUNTER,
    "n_factor_computations": KIND_COUNTER,
}

#: ``SearchResult.speculation`` keys.
SPECULATION_LEDGER_KINDS: dict[str, str] = {
    "n_speculated": KIND_COUNTER,
    "n_hits": KIND_COUNTER,
    "n_wasted": KIND_COUNTER,
    "n_cancelled": KIND_COUNTER,
    "n_drains": KIND_COUNTER,
    "wasted_bytes": KIND_COUNTER,
    "wasted_ops": KIND_COUNTER,
    "wasted_gram_computations": KIND_COUNTER,
    "depth": KIND_GAUGE,
    "ahead_max": KIND_GAUGE,
    "ahead_mean": KIND_GAUGE,
}

#: ``ServingPlane.stats()`` keys.
#: Kinds of every numeric key in ``ServingPlane.stats()``.  The
#: non-numeric keys (``backend``, ``versions``) are skipped by
#: ``absorb``; ``active_version`` is ``None`` until the first flip and
#: skipped until then.
SERVING_LEDGER_KINDS: dict[str, str] = {
    "n_installs": KIND_COUNTER,
    "n_swaps": KIND_COUNTER,
    "n_batches": KIND_COUNTER,
    "n_rows_served": KIND_COUNTER,
    "n_requests": KIND_COUNTER,
    "n_reroutes": KIND_COUNTER,
    "n_promotions": KIND_COUNTER,
    "n_rebalances": KIND_COUNTER,
    "n_rebalanced_strips": KIND_COUNTER,
    "n_gathers": KIND_COUNTER,
    "serve_bytes_out": KIND_COUNTER,
    "serve_bytes_in": KIND_COUNTER,
    "n_workers": KIND_GAUGE,
    "n_dead_workers": KIND_GAUGE,
    "n_strips": KIND_GAUGE,
    "replication": KIND_GAUGE,
    "active_version": KIND_GAUGE,
}


#: ``Coordinator.tenant_ledgers()`` values — one flat dict per tenant
#: (see :class:`repro.cluster.tenancy.TenantState.ledger`).
TENANT_LEDGER_KINDS: dict[str, str] = {
    "weight": KIND_GAUGE,
    "queue_depth": KIND_GAUGE,
    "n_tasks": KIND_COUNTER,
    "n_results": KIND_COUNTER,
    "n_reassigned": KIND_COUNTER,
    "n_speculative_tasks": KIND_COUNTER,
    "n_rejected": KIND_COUNTER,
    "n_resets": KIND_COUNTER,
    "envelope_bytes_out": KIND_COUNTER,
    "envelope_bytes_in": KIND_COUNTER,
}


def tenant_metrics(ledgers: Mapping[str, Mapping[str, Any]]) -> MetricsRegistry:
    """A registry view over ``Coordinator.tenant_ledgers()``.

    Each tenant's flat ledger is absorbed under ``cluster.tenant.*``
    with a ``tenant=`` label, so one snapshot carries every tenant's
    scheduling/wire counters side by side::

        registry = tenant_metrics(coordinator.tenant_ledgers())
        registry.snapshot()["counters"]["cluster.tenant.n_tasks{tenant=a}"]
    """
    registry = MetricsRegistry()
    for tenant, ledger in ledgers.items():
        registry.absorb(
            ledger, TENANT_LEDGER_KINDS, prefix="cluster.tenant.", tenant=tenant
        )
    return registry


def wire_gauge_keys() -> frozenset[str]:
    """Wire-ledger keys that are gauges (everything else is a counter).

    The engine's per-search delta logic (``KernelEvaluationEngine.
    wire_stats``) uses this: counters are reported as deltas against
    the construction-time baseline, gauges pass through as the latest
    sample.
    """
    return frozenset(
        key for key, kind in WIRE_LEDGER_KINDS.items() if kind == KIND_GAUGE
    )


# ---------------------------------------------------------------------------
# Plain-dict ledger helpers (the shared merge code)
# ---------------------------------------------------------------------------


def merge_counts(
    target: dict,
    source: Mapping[str, Any],
    kinds: Mapping[str, str] | None = None,
) -> dict:
    """Merge ``source`` into ``target`` in place and return ``target``.

    Counter keys (the default for unlisted keys) are summed; keys
    tagged :data:`KIND_GAUGE` in ``kinds`` take the source's sample
    (last merge wins).  This is the single implementation behind the
    coordinator's per-bucket byte totals, the socket backend's
    placed-cache counter sums and the worker's op ledger.
    """
    for key, value in source.items():
        if kinds is not None and kinds.get(key) == KIND_GAUGE:
            target[key] = value
        else:
            target[key] = target.get(key, 0) + value
    return target


def ledger_delta(
    current: Mapping[str, Any],
    baseline: Mapping[str, Any],
    kinds: Mapping[str, str] | None = None,
    gauges: Iterable[str] | None = None,
) -> dict:
    """Per-window view of a cumulative ledger.

    Counters are reported as ``current - baseline``; gauges pass
    through untouched (they are samples — subtracting a baseline from
    ``n_live_workers`` would be meaningless).  Gauge keys come from
    ``kinds`` (a kind table) or an explicit ``gauges`` set.
    """
    gauge_set = set(gauges or ())
    if kinds is not None:
        gauge_set.update(k for k, kind in kinds.items() if kind == KIND_GAUGE)
    return {
        key: value if key in gauge_set else value - baseline.get(key, 0)
        for key, value in current.items()
    }


# ---------------------------------------------------------------------------
# MetricsRegistry
# ---------------------------------------------------------------------------


def _key(name: str, labels: Mapping[str, Any]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Thread-safe counters / gauges / histograms with labels.

    Metric identity is ``name`` plus a sorted label set, rendered as
    ``name{label=value,...}`` in snapshots (Prometheus-style).  A name
    keeps one kind for the registry's lifetime; re-registering a name
    under a different kind raises — that is exactly the
    gauge-vs-counter ambiguity this class exists to eliminate.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._kinds: dict[str, str] = {}
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._hists: dict[str, dict[str, float]] = {}

    # -- recording -------------------------------------------------------

    def count(self, name: str, value: float = 1, **labels: Any) -> None:
        """Add ``value`` to a cumulative counter."""
        with self._lock:
            self._declare(name, KIND_COUNTER)
            key = _key(name, labels)
            self._counters[key] = self._counters.get(key, 0) + value

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set a gauge to its latest sample."""
        with self._lock:
            self._declare(name, KIND_GAUGE)
            self._gauges[_key(name, labels)] = value

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one observation into a histogram summary."""
        with self._lock:
            self._declare(name, KIND_HISTOGRAM)
            key = _key(name, labels)
            hist = self._hists.get(key)
            if hist is None:
                self._hists[key] = {
                    "count": 1,
                    "total": value,
                    "min": value,
                    "max": value,
                }
            else:
                hist["count"] += 1
                hist["total"] += value
                hist["min"] = min(hist["min"], value)
                hist["max"] = max(hist["max"], value)

    def absorb(
        self,
        ledger: Mapping[str, Any],
        kinds: Mapping[str, str] | None = None,
        prefix: str = "",
        **labels: Any,
    ) -> "MetricsRegistry":
        """Ingest a plain ``{key: number}`` ledger dict.

        Each key becomes a metric named ``prefix + key``; its kind
        comes from the ``kinds`` table (counter when unlisted).
        Non-numeric entries (backend names, version lists, ``None``)
        are skipped — ledgers mix bookkeeping with identity fields.
        Returns ``self`` for chaining.
        """
        for key, value in ledger.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            name = prefix + key
            kind = (kinds or {}).get(key, KIND_COUNTER)
            if kind == KIND_GAUGE:
                self.gauge(name, value, **labels)
            elif kind == KIND_HISTOGRAM:
                self.observe(name, value, **labels)
            else:
                self.count(name, value, **labels)
        return self

    # -- reading / merging ----------------------------------------------

    def kind(self, name: str) -> str | None:
        with self._lock:
            return self._kinds.get(name)

    def snapshot(self) -> dict:
        """One JSON-serialisable view of everything recorded.

        Shape::

            {"counters": {key: value},
             "gauges": {key: value},
             "histograms": {key: {"count", "total", "min", "max"}},
             "kinds": {name: kind}}
        """
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {k: dict(v) for k, v in self._hists.items()},
                "kinds": dict(self._kinds),
            }

    def merge(self, other: "MetricsRegistry | Mapping[str, Any]") -> "MetricsRegistry":
        """Kind-aware merge of another registry (or its ``snapshot()``).

        Counters sum; gauges take the other side's sample (it is the
        more recent one); histogram summaries combine.  Returns
        ``self``.
        """
        snap = other.snapshot() if isinstance(other, MetricsRegistry) else other
        with self._lock:
            for name, kind in snap.get("kinds", {}).items():
                self._declare(name, kind)
            for key, value in snap.get("counters", {}).items():
                self._counters[key] = self._counters.get(key, 0) + value
            for key, value in snap.get("gauges", {}).items():
                self._gauges[key] = value
            for key, hist in snap.get("histograms", {}).items():
                mine = self._hists.get(key)
                if mine is None:
                    self._hists[key] = dict(hist)
                else:
                    mine["count"] += hist["count"]
                    mine["total"] += hist["total"]
                    mine["min"] = min(mine["min"], hist["min"])
                    mine["max"] = max(mine["max"], hist["max"])
        return self

    def report(self) -> str:
        """Plain-text table of the registry contents."""
        snap = self.snapshot()
        lines = []
        for section in ("counters", "gauges"):
            for key in sorted(snap[section]):
                lines.append(f"{section[:-1]:9s} {key:48s} {snap[section][key]}")
        for key in sorted(snap["histograms"]):
            h = snap["histograms"][key]
            mean = h["total"] / h["count"] if h["count"] else 0.0
            lines.append(
                f"histogram {key:48s} count={h['count']} "
                f"mean={mean:.6g} min={h['min']:.6g} max={h['max']:.6g}"
            )
        return "\n".join(lines)

    # -- internals -------------------------------------------------------

    def _declare(self, name: str, kind: str) -> None:
        # base name (label-free) keeps one kind for the registry's life
        known = self._kinds.get(name)
        if known is None:
            self._kinds[name] = kind
        elif known != kind:
            raise ValueError(
                f"metric {name!r} already registered as {known}, not {kind}"
            )


# ---------------------------------------------------------------------------
# SearchResult view
# ---------------------------------------------------------------------------


def result_metrics(result: Any) -> MetricsRegistry:
    """A :class:`MetricsRegistry` view over a ``SearchResult``.

    Absorbs the op counters, the wire ledger (``engine.wire.*``) and
    the speculation ledger (``engine.speculation.*``) with their
    declared kinds.  Purely derived — the legacy ``result.*`` fields
    are untouched and remain the source of truth.
    """
    registry = MetricsRegistry()
    ops = {
        key: getattr(result, key)
        for key in OP_LEDGER_KINDS
        if getattr(result, key, None) is not None
    }
    registry.absorb(ops, OP_LEDGER_KINDS, prefix="engine.")
    wire = getattr(result, "wire", None)
    if wire:
        registry.absorb(wire, WIRE_LEDGER_KINDS, prefix="engine.wire.")
    speculation = getattr(result, "speculation", None)
    if speculation:
        registry.absorb(
            speculation, SPECULATION_LEDGER_KINDS, prefix="engine.speculation."
        )
    return registry
