"""Exporters for tracer records: Chrome trace JSON, JSONL, text report.

Tracer records (see :mod:`repro.telemetry.tracer`) already use the
Chrome trace-event vocabulary, so :func:`chrome_trace` is mostly a
wrapping pass that adds process/thread name metadata.  The produced
document loads directly in ``chrome://tracing`` and
`Perfetto <https://ui.perfetto.dev>`_.

:func:`validate_chrome_trace` is the schema check the test suite runs
on every exported document — the contract that keeps the files
loadable by external viewers we cannot run in CI.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping

__all__ = [
    "chrome_trace",
    "jsonl_lines",
    "report_records",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]


def _clean_args(args: Mapping[str, Any]) -> dict:
    """JSON-safe copy of span attributes (repr() anything exotic)."""
    out = {}
    for key, value in args.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        else:
            out[key] = repr(value)
    return out


def chrome_trace(
    records: Iterable[Mapping[str, Any]], process_name: str = "repro"
) -> dict:
    """Chrome trace-event document (``{"traceEvents": [...]}``).

    Spans become ``ph: "X"`` complete events, instants ``ph: "i"``
    with thread scope.  Timestamps/durations are microseconds, as the
    format requires.
    """
    events = []
    pids = set()
    for rec in records:
        event = {
            "name": str(rec["name"]),
            "cat": str(rec.get("cat", "repro")),
            "ph": rec.get("ph", "X"),
            "ts": float(rec["ts"]),
            "pid": int(rec.get("pid", 0)),
            "tid": int(rec.get("tid", 0)),
            "args": _clean_args(rec.get("args", {})),
        }
        if event["ph"] == "X":
            event["dur"] = float(rec.get("dur", 0.0))
        elif event["ph"] == "i":
            event["s"] = "t"  # instant scoped to its thread
        events.append(event)
        pids.add(event["pid"])
    for pid in sorted(pids):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"{process_name} (pid {pid})"},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(doc: Any) -> None:
    """Raise ``ValueError`` unless ``doc`` is a loadable trace document.

    Checks the invariants ``chrome://tracing`` / Perfetto rely on:
    a ``traceEvents`` list whose entries carry a string ``name``, a
    known phase, numeric non-negative ``ts``, and for complete events
    a numeric non-negative ``dur``.
    """
    if not isinstance(doc, dict):
        raise ValueError("trace document must be a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace document must carry a traceEvents list")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        if not isinstance(event.get("name"), str) or not event["name"]:
            raise ValueError(f"traceEvents[{i}] lacks a name")
        ph = event.get("ph")
        if ph not in ("X", "i", "M", "B", "E", "b", "e", "C"):
            raise ValueError(f"traceEvents[{i}] has unknown phase {ph!r}")
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"traceEvents[{i}] has invalid ts {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"traceEvents[{i}] has invalid dur {dur!r}")
        if "args" in event and not isinstance(event["args"], dict):
            raise ValueError(f"traceEvents[{i}] args is not an object")
    json.dumps(doc)  # must be serialisable end-to-end


def write_chrome_trace(
    path: str,
    records: Iterable[Mapping[str, Any]],
    process_name: str = "repro",
) -> str:
    """Write a validated Chrome trace JSON file; returns ``path``."""
    doc = chrome_trace(records, process_name=process_name)
    validate_chrome_trace(doc)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return path


def jsonl_lines(records: Iterable[Mapping[str, Any]]) -> list[str]:
    """One compact JSON object per record (flat event log)."""
    lines = []
    for rec in records:
        flat = dict(rec)
        flat["args"] = _clean_args(rec.get("args", {}))
        lines.append(json.dumps(flat, sort_keys=True))
    return lines


def write_jsonl(path: str, records: Iterable[Mapping[str, Any]]) -> str:
    """Write the flat JSONL event log; returns ``path``."""
    with open(path, "w") as fh:
        for line in jsonl_lines(records):
            fh.write(line + "\n")
    return path


def report_records(records: Iterable[Mapping[str, Any]]) -> str:
    """Plain-text summary table aggregated per (category, span name).

    Columns: call count, total / mean / max duration in milliseconds.
    Instant events show a count with ``-`` durations.
    """
    stats: dict[tuple[str, str], dict[str, float]] = {}
    for rec in records:
        key = (str(rec.get("cat", "repro")), str(rec["name"]))
        entry = stats.setdefault(
            key, {"count": 0, "total": 0.0, "max": 0.0, "timed": False}
        )
        entry["count"] += 1
        if rec.get("ph", "X") == "X":
            entry["timed"] = True
            dur_ms = float(rec.get("dur", 0.0)) / 1000.0
            entry["total"] += dur_ms
            entry["max"] = max(entry["max"], dur_ms)
    header = (
        f"{'category':<12} {'span':<36} {'count':>7} "
        f"{'total_ms':>10} {'mean_ms':>10} {'max_ms':>10}"
    )
    lines = [header, "-" * len(header)]
    # widest total time first: "where did the time go"
    ordered = sorted(
        stats.items(), key=lambda item: (-item[1]["total"], item[0])
    )
    for (cat, name), entry in ordered:
        if entry["timed"]:
            mean = entry["total"] / entry["count"]
            lines.append(
                f"{cat:<12} {name:<36} {entry['count']:>7d} "
                f"{entry['total']:>10.3f} {mean:>10.3f} {entry['max']:>10.3f}"
            )
        else:
            lines.append(
                f"{cat:<12} {name:<36} {entry['count']:>7d} "
                f"{'-':>10} {'-':>10} {'-':>10}"
            )
    if not stats:
        lines.append("(no records)")
    return "\n".join(lines)
