"""Telemetry plane: span tracing, unified metrics, fleet introspection.

Three pieces, deliberately dependency-free (stdlib only) so every other
package — engine, cluster, serving, benchmarks — can import them
without cycles:

* :mod:`~repro.telemetry.tracer` — a process-global span tracer with a
  context-manager/decorator API.  **Zero-overhead when off**: every
  instrumented hot path guards on the single ``tracer.enabled``
  attribute (and ``tracer.span(...)`` returns a shared no-op context
  when disabled), so a telemetry-off run executes the exact same
  arithmetic as an uninstrumented one — optimum, scores, op ledgers,
  wire ledgers and served responses are bit-identical either way, on
  or off (telemetry only *observes*; it never changes what is
  computed).
* :mod:`~repro.telemetry.metrics` — :class:`MetricsRegistry`
  (counters / gauges / histograms with labels, one ``snapshot()``
  surface, kind-aware ``merge``), plus the plain-dict helpers
  (:func:`merge_counts`, :func:`ledger_delta`) the wire-ledger code
  shares, and the :data:`WIRE_LEDGER_KINDS` table that tags every
  ``SearchResult.wire`` key as a gauge or a counter — the single
  source of truth for merge semantics.
* :mod:`~repro.telemetry.export` — exporters: Chrome
  ``chrome://tracing`` / Perfetto JSON traces, flat JSONL event logs,
  and a plain-text summary table (:func:`report`).

Live fleet introspection rides the cluster protocol's
``MSG_TELEMETRY`` frame (:mod:`repro.cluster.status` — the
``python -m repro.cluster.status`` CLI), which polls each worker's
metrics/span snapshot over short-deadline connections so a dead or
hung node can never wedge the poll.

Quickstart::

    from repro import telemetry

    tracer = telemetry.enable_tracing()
    ...                      # run a search / serve a batch
    tracer.write_chrome_trace("trace.json")   # open in chrome://tracing
    print(telemetry.report())                 # plain-text summary
    telemetry.disable_tracing()
"""

from repro.telemetry.export import (
    chrome_trace,
    jsonl_lines,
    report_records,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.metrics import (
    KIND_COUNTER,
    KIND_GAUGE,
    KIND_HISTOGRAM,
    OP_LEDGER_KINDS,
    SERVING_LEDGER_KINDS,
    SPECULATION_LEDGER_KINDS,
    TENANT_LEDGER_KINDS,
    WIRE_LEDGER_KINDS,
    MetricsRegistry,
    ledger_delta,
    merge_counts,
    result_metrics,
    tenant_metrics,
    wire_gauge_keys,
)
from repro.telemetry.tracer import (
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    tracing_enabled,
)

__all__ = [
    "KIND_COUNTER",
    "KIND_GAUGE",
    "KIND_HISTOGRAM",
    "MetricsRegistry",
    "OP_LEDGER_KINDS",
    "SERVING_LEDGER_KINDS",
    "SPECULATION_LEDGER_KINDS",
    "TENANT_LEDGER_KINDS",
    "Tracer",
    "WIRE_LEDGER_KINDS",
    "chrome_trace",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "jsonl_lines",
    "ledger_delta",
    "merge_counts",
    "report",
    "report_records",
    "result_metrics",
    "tenant_metrics",
    "tracing_enabled",
    "validate_chrome_trace",
    "wire_gauge_keys",
    "write_chrome_trace",
    "write_jsonl",
]


def report() -> str:
    """Plain-text summary table of the global tracer's recorded spans."""
    return get_tracer().report()
