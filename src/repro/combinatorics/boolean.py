"""The Boolean lattice ``B_n`` of subsets of ``{1, ..., n}``.

The Loeb–Damiani–D'Antona construction (paper Sec. III, Table I) starts
from a symmetric chain decomposition of ``B_n`` and transfers it to the
partition lattice ``Pi_{n+1}``.  Subsets are represented as
``frozenset[int]`` over the 1-based ground set, matching the paper's
notation (``{1}``, ``{1, 2}``, ...).
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator

import networkx as nx

from repro.combinatorics.posets import hasse_diagram

__all__ = [
    "Subset",
    "ground_set",
    "all_subsets",
    "subsets_of_size",
    "subset_rank",
    "subset_covers",
    "boolean_hasse",
    "format_subset",
]

Subset = frozenset[int]


def ground_set(n: int) -> Subset:
    """Return ``{1, ..., n}`` as a frozenset."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return frozenset(range(1, n + 1))


def all_subsets(n: int) -> Iterator[Subset]:
    """Yield all ``2**n`` subsets of ``{1, ..., n}`` by increasing size."""
    base = sorted(ground_set(n))
    for size in range(n + 1):
        for combo in itertools.combinations(base, size):
            yield frozenset(combo)


def subsets_of_size(n: int, k: int) -> Iterator[Subset]:
    """Yield the ``C(n, k)`` subsets of ``{1, ..., n}`` with ``k`` elements."""
    for combo in itertools.combinations(sorted(ground_set(n)), k):
        yield frozenset(combo)


def subset_rank(subset: Subset) -> int:
    """Rank of a subset in ``B_n`` (its cardinality)."""
    return len(subset)


def subset_covers(upper: Subset, lower: Subset) -> bool:
    """Return True if ``upper`` covers ``lower`` in inclusion order."""
    return len(upper) == len(lower) + 1 and lower <= upper


def boolean_hasse(n: int) -> nx.DiGraph:
    """Return the Hasse diagram of ``B_n`` (edges lower -> upper)."""
    return hasse_diagram(list(all_subsets(n)), subset_covers)


def format_subset(subset: Subset) -> str:
    """Render a subset in the paper's style, e.g. ``'{1, 2}'`` or ``'∅'``."""
    if not subset:
        return "∅"
    return "{" + ", ".join(str(element) for element in sorted(subset)) + "}"
