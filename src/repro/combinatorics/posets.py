"""Generic ranked-poset machinery: chains, symmetric chains, Hasse diagrams.

Section III of the paper leans on poset vocabulary — saturated chains,
symmetric chains, chain decompositions, rank functions — for both the
Boolean lattice ``B_n`` and the partition lattice ``Pi_n``.  This module
provides that vocabulary once, parameterised by a rank function and a
covering test, so the de Bruijn and Loeb–Damiani–D'Antona constructions
can be validated with the same code.
"""

from __future__ import annotations

from collections.abc import Callable, Collection, Hashable, Iterable, Sequence
from dataclasses import dataclass, field

import networkx as nx

__all__ = [
    "Chain",
    "ChainDecompositionReport",
    "is_saturated_chain",
    "is_symmetric_chain",
    "validate_chain_decomposition",
    "hasse_diagram",
    "longest_antichain_size",
]

Node = Hashable


@dataclass(frozen=True)
class Chain:
    """A chain ``x_1 < x_2 < ... < x_c`` in a poset, stored bottom-up."""

    elements: tuple[Node, ...]

    def __post_init__(self) -> None:
        if not self.elements:
            raise ValueError("a chain must contain at least one element")

    def __len__(self) -> int:
        return len(self.elements)

    def __iter__(self):
        return iter(self.elements)

    def __getitem__(self, index):
        return self.elements[index]

    @property
    def bottom(self) -> Node:
        return self.elements[0]

    @property
    def top(self) -> Node:
        return self.elements[-1]


def is_saturated_chain(
    chain: Sequence[Node], covers: Callable[[Node, Node], bool]
) -> bool:
    """Return True if each chain element is covered by the next.

    ``covers(upper, lower)`` must return True when ``upper`` covers
    ``lower`` (no element strictly between them).
    """
    return all(
        covers(upper, lower) for lower, upper in zip(chain, list(chain)[1:])
    )


def is_symmetric_chain(
    chain: Sequence[Node], rank_of: Callable[[Node], int], poset_rank: int
) -> bool:
    """Return True if ``rank(x_1) + rank(x_c) == poset_rank``.

    The chain must also be saturated to qualify as a symmetric chain in a
    decomposition; this predicate checks only the rank symmetry.
    """
    chain = list(chain)
    return rank_of(chain[0]) + rank_of(chain[-1]) == poset_rank


@dataclass
class ChainDecompositionReport:
    """Validation outcome for a (partial) chain decomposition."""

    n_chains: int
    n_elements_covered: int
    all_saturated: bool
    all_symmetric: bool
    disjoint: bool
    covered: set[Node] = field(repr=False)
    duplicates: set[Node] = field(repr=False)
    non_saturated_chains: list[int] = field(repr=False)
    non_symmetric_chains: list[int] = field(repr=False)

    @property
    def valid(self) -> bool:
        """True when chains are pairwise disjoint, saturated, symmetric."""
        return self.all_saturated and self.all_symmetric and self.disjoint


def validate_chain_decomposition(
    chains: Iterable[Sequence[Node]],
    rank_of: Callable[[Node], int],
    covers: Callable[[Node, Node], bool],
    poset_rank: int,
) -> ChainDecompositionReport:
    """Check a collection of chains for the symmetric-chain-decomposition
    properties: pairwise disjoint, saturated, and rank-symmetric."""
    covered: set[Node] = set()
    duplicates: set[Node] = set()
    non_saturated: list[int] = []
    non_symmetric: list[int] = []
    n_chains = 0
    for index, chain in enumerate(chains):
        n_chains += 1
        if not is_saturated_chain(chain, covers):
            non_saturated.append(index)
        if not is_symmetric_chain(chain, rank_of, poset_rank):
            non_symmetric.append(index)
        for node in chain:
            if node in covered:
                duplicates.add(node)
            covered.add(node)
    return ChainDecompositionReport(
        n_chains=n_chains,
        n_elements_covered=len(covered),
        all_saturated=not non_saturated,
        all_symmetric=not non_symmetric,
        disjoint=not duplicates,
        covered=covered,
        duplicates=duplicates,
        non_saturated_chains=non_saturated,
        non_symmetric_chains=non_symmetric,
    )


def hasse_diagram(
    nodes: Collection[Node], covers: Callable[[Node, Node], bool]
) -> nx.DiGraph:
    """Build the Hasse diagram as a DiGraph with edges lower -> upper.

    ``covers(upper, lower)`` is evaluated for every ordered node pair, so
    this is intended for small posets (e.g. the paper's Fig. 2, which is
    ``Pi_4`` with 15 nodes).
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(nodes)
    for lower in nodes:
        for upper in nodes:
            if lower != upper and covers(upper, lower):
                graph.add_edge(lower, upper)
    return graph


def longest_antichain_size(hasse: nx.DiGraph) -> int:
    """Return the width (largest antichain) of the poset via Dilworth.

    By Dilworth's theorem the width equals the minimum number of chains
    needed to cover the poset, computed here by maximum bipartite
    matching on the transitive closure (Mirsky/König construction).
    """
    closure = nx.transitive_closure_dag(hasse)
    left = {node: ("L", node) for node in closure.nodes}
    right = {node: ("R", node) for node in closure.nodes}
    bipartite = nx.Graph()
    bipartite.add_nodes_from(left.values(), bipartite=0)
    bipartite.add_nodes_from(right.values(), bipartite=1)
    for lower, upper in closure.edges:
        bipartite.add_edge(left[lower], right[upper])
    matching = nx.bipartite.maximum_matching(bipartite, top_nodes=list(left.values()))
    matched_pairs = sum(1 for node in matching if node[0] == "L")
    return closure.number_of_nodes() - matched_pairs
