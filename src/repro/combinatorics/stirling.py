"""Counting functions for the partition lattice.

The paper's complexity argument (Sec. III) rests on classic counting
facts: the number of partitions of an ``n``-set with ``k`` blocks is the
Stirling number of the second kind ``S(n, k)``; the level sums are the
Bell numbers; the Whitney numbers of the partition lattice are the
Stirling numbers themselves.  Exhaustive exploration of the lattice cone
rooted at a two-block partition costs a sum of Stirling numbers, while
the chain-decomposition strategy of Loeb, Damiani and D'Antona is linear
in the block size.  This module provides exact integer implementations
of all those quantities.
"""

from __future__ import annotations

import math
from functools import lru_cache

__all__ = [
    "binomial",
    "stirling2",
    "stirling2_row",
    "bell_number",
    "bell_triangle",
    "whitney_numbers",
    "compositions",
    "count_compositions",
    "count_partitions_of_type",
    "falling_factorial",
]


def binomial(n: int, k: int) -> int:
    """Return the binomial coefficient ``C(n, k)`` (0 outside range)."""
    if k < 0 or k > n or n < 0:
        return 0
    return math.comb(n, k)


def falling_factorial(n: int, k: int) -> int:
    """Return the falling factorial ``n * (n-1) * ... * (n-k+1)``."""
    if k < 0:
        raise ValueError("k must be non-negative")
    result = 1
    for i in range(k):
        result *= n - i
    return result


@lru_cache(maxsize=None)
def stirling2(n: int, k: int) -> int:
    """Return the Stirling number of the second kind ``S(n, k)``.

    ``S(n, k)`` counts the partitions of an ``n``-element set into
    exactly ``k`` non-empty blocks.  Computed by the standard recurrence
    ``S(n, k) = k * S(n-1, k) + S(n-1, k-1)``.

    >>> stirling2(4, 2)
    7
    >>> stirling2(4, 3)
    6
    """
    if n < 0 or k < 0:
        return 0
    if n == 0 and k == 0:
        return 1
    if n == 0 or k == 0:
        return 0
    if k > n:
        return 0
    return k * stirling2(n - 1, k) + stirling2(n - 1, k - 1)


def stirling2_row(n: int) -> list[int]:
    """Return ``[S(n, 0), S(n, 1), ..., S(n, n)]``."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return [stirling2(n, k) for k in range(n + 1)]


@lru_cache(maxsize=None)
def bell_number(n: int) -> int:
    """Return the Bell number ``B(n)``: the number of partitions of [n].

    >>> [bell_number(i) for i in range(6)]
    [1, 1, 2, 5, 15, 52]
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    return sum(stirling2(n, k) for k in range(n + 1))


def bell_triangle(rows: int) -> list[list[int]]:
    """Return the Bell (Aitken) triangle with the given number of rows.

    Row ``i`` starts with ``B(i)`` and each subsequent entry is the sum
    of the previous entry and the entry above it.  The last entry of row
    ``i`` equals ``B(i + 1)``.
    """
    if rows < 0:
        raise ValueError("rows must be non-negative")
    triangle: list[list[int]] = []
    for i in range(rows):
        if i == 0:
            row = [1]
        else:
            row = [triangle[i - 1][-1]]
            for above in triangle[i - 1]:
                row.append(row[-1] + above)
        triangle.append(row)
    return triangle


def whitney_numbers(n: int) -> list[int]:
    """Return the Whitney numbers of the second kind of ``Pi_n``.

    The partition lattice of an ``n``-set, ranked by ``rank(pi) =
    n - #blocks(pi)``, has ``S(n, n - i)`` elements at rank ``i``.  The
    returned list is indexed by rank, so entry ``i`` counts partitions
    with ``n - i`` blocks.  This is the rank profile quoted by the paper
    (e.g. ``2**(n-1) - 1`` two-block partitions at the top but only
    ``n*(n-1)/2`` partitions into ``n - 1`` blocks near the bottom).

    >>> whitney_numbers(4)
    [1, 6, 7, 1]
    """
    if n < 1:
        raise ValueError("n must be positive")
    return [stirling2(n, n - i) for i in range(n)]


def compositions(total: int, parts: int | None = None):
    """Yield compositions of ``total`` as tuples of positive integers.

    A composition is an *ordered* sequence of positive integers summing
    to ``total``.  If ``parts`` is given, only compositions with exactly
    that many parts are produced.

    >>> sorted(compositions(3))
    [(1, 1, 1), (1, 2), (2, 1), (3,)]
    """
    if total < 0:
        raise ValueError("total must be non-negative")
    if total == 0:
        if parts in (None, 0):
            yield ()
        return

    def _generate(remaining: int, prefix: tuple[int, ...]):
        if remaining == 0:
            if parts is None or len(prefix) == parts:
                yield prefix
            return
        if parts is not None and len(prefix) >= parts:
            return
        for first in range(1, remaining + 1):
            yield from _generate(remaining - first, prefix + (first,))

    yield from _generate(total, ())


def count_compositions(total: int, parts: int) -> int:
    """Return the number of compositions of ``total`` into ``parts`` parts."""
    if total <= 0 or parts <= 0:
        return 1 if total == 0 and parts == 0 else 0
    return binomial(total - 1, parts - 1)


def count_partitions_of_type(composition: tuple[int, ...]) -> int:
    """Count set partitions whose min-ordered block sizes equal ``composition``.

    A partition of ``[m]`` has *type* ``(c_1, ..., c_k)`` when its blocks,
    ordered by their minimum element, have sizes ``c_1, ..., c_k``.  The
    count follows by placing blocks left to right: block ``i`` must
    contain the smallest element not yet used, and its remaining
    ``c_i - 1`` members are chosen freely from what is left.

    >>> count_partitions_of_type((2, 1, 1))
    3
    >>> count_partitions_of_type((1, 1, 2))
    1
    """
    if any(c <= 0 for c in composition):
        raise ValueError("composition parts must be positive")
    remaining = sum(composition)
    count = 1
    for part in composition:
        count *= binomial(remaining - 1, part - 1)
        remaining -= part
    return count
