"""Möbius function and Whitney numbers of the partition lattice.

The paper's complexity argument cites Damiani, D'Antona and Regonati,
"Whitney numbers of some geometric lattices" (JCTA 65, 1994) — its
reference [10] — for the level counts of the partition lattice.  This
module implements that layer of lattice theory for ``Pi_n``:

* the Möbius function on intervals ``[pi, sigma]`` (every interval of a
  partition lattice factors into a product of smaller partition
  lattices, so ``mu`` is a product of ``(-1)^(m-1) (m-1)!`` terms);
* Whitney numbers of the first kind ``w_k = sum mu(0, pi)`` over rank
  ``k`` — the signed Stirling numbers of the first kind;
* the characteristic polynomial ``chi(t) = (t-1)(t-2)...(t-n+1)``;
* a generic matrix-inversion Möbius for *any* small poset, used by the
  tests to cross-validate the closed forms.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from functools import lru_cache
from math import factorial

from repro.combinatorics.partitions import SetPartition
from repro.combinatorics.stirling import binomial

__all__ = [
    "stirling1_unsigned",
    "stirling1_signed",
    "whitney_numbers_first_kind",
    "moebius_partition_interval",
    "moebius_bottom",
    "characteristic_polynomial",
    "generic_moebius_matrix",
]


@lru_cache(maxsize=None)
def stirling1_unsigned(n: int, k: int) -> int:
    """Unsigned Stirling number of the first kind ``c(n, k)``.

    Counts permutations of ``n`` elements with ``k`` cycles; recurrence
    ``c(n, k) = (n-1) c(n-1, k) + c(n-1, k-1)``.

    >>> stirling1_unsigned(4, 2)
    11
    """
    if n < 0 or k < 0:
        return 0
    if n == 0 and k == 0:
        return 1
    if n == 0 or k == 0:
        return 0
    if k > n:
        return 0
    return (n - 1) * stirling1_unsigned(n - 1, k) + stirling1_unsigned(n - 1, k - 1)


def stirling1_signed(n: int, k: int) -> int:
    """Signed Stirling number of the first kind ``s(n, k)``."""
    unsigned = stirling1_unsigned(n, k)
    return unsigned if (n - k) % 2 == 0 else -unsigned


def whitney_numbers_first_kind(n: int) -> list[int]:
    """Whitney numbers of the first kind of ``Pi_n``, indexed by rank.

    ``w_k = sum over rank-k partitions of mu(0, pi) = s(n, n - k)``.

    >>> whitney_numbers_first_kind(4)
    [1, -6, 11, -6]
    """
    if n < 1:
        raise ValueError("n must be positive")
    return [stirling1_signed(n, n - k) for k in range(n)]


def moebius_bottom(partition: SetPartition) -> int:
    """Möbius value ``mu(0^, pi)`` from the finest partition.

    The interval ``[0^, pi]`` is a product of partition lattices, one
    per block of ``pi``, so ``mu`` is the product of
    ``(-1)^(|B|-1) (|B|-1)!``.

    >>> moebius_bottom(SetPartition([(1, 2, 3), (4,)]))
    2
    """
    value = 1
    for block in partition.blocks:
        m = len(block)
        term = factorial(m - 1)
        value *= term if (m - 1) % 2 == 0 else -term
    return value


def moebius_partition_interval(lower: SetPartition, upper: SetPartition) -> int:
    """Möbius value ``mu(lower, upper)`` in the partition lattice.

    Requires ``lower <= upper``.  Each block of ``upper`` is the union
    of some ``m_i`` blocks of ``lower``, and the interval is isomorphic
    to the product of the ``Pi_{m_i}``, hence
    ``mu = prod (-1)^(m_i - 1) (m_i - 1)!``.
    """
    if not lower.is_refinement_of(upper):
        raise ValueError("mu(lower, upper) requires lower <= upper")
    value = 1
    for upper_block in upper.blocks:
        merged = {lower.block_index_of(element) for element in upper_block}
        m = len(merged)
        term = factorial(m - 1)
        value *= term if (m - 1) % 2 == 0 else -term
    return value


def characteristic_polynomial(n: int) -> list[int]:
    """Coefficients of ``chi_{Pi_n}(t) = prod_{i=1}^{n-1} (t - i)``.

    Returned low-degree-first: ``chi(t) = sum coeffs[d] * t**d``.
    Equivalently ``chi(t) = sum_k w_k t^(n-1-k)`` with the Whitney
    numbers of the first kind — an identity the tests verify.

    >>> characteristic_polynomial(3)  # (t-1)(t-2) = t^2 - 3t + 2
    [2, -3, 1]
    """
    if n < 1:
        raise ValueError("n must be positive")
    coefficients = [1]
    for root in range(1, n):
        # Multiply by (t - root).
        shifted = [0] + coefficients  # * t
        scaled = [-root * c for c in coefficients] + [0]
        coefficients = [a + b for a, b in zip(shifted, scaled)]
    return coefficients


def evaluate_polynomial(coefficients: Sequence[int], t: int) -> int:
    """Evaluate a low-degree-first integer polynomial at ``t``."""
    value = 0
    for degree in range(len(coefficients) - 1, -1, -1):
        value = value * t + coefficients[degree]
    return value


def generic_moebius_matrix(
    nodes: Sequence, less_equal: Callable[[object, object], bool]
) -> dict[tuple, int]:
    """Möbius function of an arbitrary finite poset by recursion.

    Returns ``{(x, y): mu(x, y)}`` for all comparable pairs — O(n^3),
    intended for cross-validation on small posets.
    """
    nodes = list(nodes)
    mu: dict[tuple, int] = {}
    # Order nodes by the number of elements below them so intervals are
    # processed bottom-up.
    height = {
        node: sum(1 for other in nodes if less_equal(other, node))
        for node in nodes
    }
    ordered = sorted(nodes, key=lambda node: height[node])
    for x in ordered:
        for y in ordered:
            if not less_equal(x, y):
                continue
            if x == y:
                mu[(x, y)] = 1
                continue
            total = 0
            for z in ordered:
                if z != y and less_equal(x, z) and less_equal(z, y):
                    total += mu[(x, z)]
            mu[(x, y)] = -total
    return mu


def boolean_moebius(lower: frozenset, upper: frozenset) -> int:
    """Möbius function of the Boolean lattice: ``(-1)^(|upper| - |lower|)``."""
    if not lower <= upper:
        raise ValueError("mu(lower, upper) requires lower <= upper")
    return 1 if (len(upper) - len(lower)) % 2 == 0 else -1


def binomial_inversion_check(n: int) -> bool:
    """Sanity identity: ``sum_k (-1)^k C(n, k) == 0`` for ``n >= 1``."""
    return sum(
        (-1) ** k * binomial(n, k) for k in range(n + 1)
    ) == (1 if n == 0 else 0)
