"""Set partitions and the refinement order.

The paper (Sec. III) explores multiple-kernel configurations as points
of the partition lattice ``Pi(S)`` of the feature set ``S``: each block
of a partition yields one kernel, and lattice moves ("smushing" block
boundaries) navigate between configurations.  This module implements the
value type for partitions: canonical form, restricted-growth strings,
the refinement partial order, meet and join (which make ``Pi(S)`` a
complete lattice), covering moves, rank, and exact uniform sampling.

Elements of the ground set may be any mutually orderable hashables
(feature names, column indices, ...).
"""

from __future__ import annotations

import itertools
from collections.abc import Hashable, Iterable, Iterator, Sequence
from typing import Any

from repro.combinatorics.stirling import bell_number, stirling2

__all__ = [
    "SetPartition",
    "all_partitions",
    "partitions_with_blocks",
    "random_partition",
    "restricted_growth_strings",
]

Element = Hashable


class SetPartition:
    """An immutable partition of a finite ground set into disjoint blocks.

    Blocks are canonicalised: elements sorted within each block, blocks
    ordered by their minimum element.  Instances are hashable and compare
    equal iff they have the same blocks, so they can serve as dict keys
    during lattice searches.

    >>> pi = SetPartition([("a", "b"), ("c",)])
    >>> pi.n_blocks
    2
    >>> pi.block_of("b")
    ('a', 'b')
    """

    __slots__ = ("_blocks", "_ground", "_index", "_hash")

    def __init__(self, blocks: Iterable[Iterable[Element]]):
        cleaned: list[tuple[Element, ...]] = []
        seen: set[Element] = set()
        for raw_block in blocks:
            block = tuple(sorted(raw_block))
            if not block:
                raise ValueError("blocks must be non-empty")
            for element in block:
                if element in seen:
                    raise ValueError(f"element {element!r} appears in two blocks")
                seen.add(element)
            cleaned.append(block)
        if not cleaned:
            raise ValueError("a partition needs at least one block")
        cleaned.sort(key=lambda block: block[0])
        self._blocks: tuple[tuple[Element, ...], ...] = tuple(cleaned)
        self._ground: frozenset[Element] = frozenset(seen)
        self._index: dict[Element, int] = {
            element: i for i, block in enumerate(cleaned) for element in block
        }
        self._hash = hash(self._blocks)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def singletons(cls, elements: Iterable[Element]) -> "SetPartition":
        """Return the finest partition: every element in its own block."""
        return cls([(element,) for element in elements])

    @classmethod
    def coarsest(cls, elements: Iterable[Element]) -> "SetPartition":
        """Return the one-block partition of the given elements."""
        return cls([tuple(elements)])

    @classmethod
    def from_rgs(
        cls, rgs: Sequence[int], elements: Sequence[Element] | None = None
    ) -> "SetPartition":
        """Build a partition from a restricted-growth string.

        ``rgs[i]`` is the block label of ``elements[i]``; labels must
        satisfy ``rgs[0] == 0`` and ``rgs[i] <= max(rgs[:i]) + 1``.
        """
        if elements is None:
            elements = list(range(len(rgs)))
        if len(elements) != len(rgs):
            raise ValueError("rgs and elements must have equal length")
        if not rgs:
            raise ValueError("rgs must be non-empty")
        if rgs[0] != 0:
            raise ValueError("a restricted-growth string starts with 0")
        highest = 0
        blocks: dict[int, list[Element]] = {}
        for position, label in enumerate(rgs):
            if label > highest + 1 or label < 0:
                raise ValueError(f"label {label} at position {position} breaks growth")
            highest = max(highest, label)
            blocks.setdefault(label, []).append(elements[position])
        return cls(blocks.values())

    @classmethod
    def from_labels(cls, labels: dict[Element, Any]) -> "SetPartition":
        """Group elements that share a label value into blocks."""
        blocks: dict[Any, list[Element]] = {}
        for element, label in labels.items():
            blocks.setdefault(label, []).append(element)
        return cls(blocks.values())

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------

    @property
    def blocks(self) -> tuple[tuple[Element, ...], ...]:
        """The blocks, min-ordered, each internally sorted."""
        return self._blocks

    @property
    def ground_set(self) -> frozenset[Element]:
        """The set being partitioned."""
        return self._ground

    @property
    def n_blocks(self) -> int:
        """The number of blocks."""
        return len(self._blocks)

    @property
    def size(self) -> int:
        """The number of ground-set elements."""
        return len(self._ground)

    @property
    def rank(self) -> int:
        """Rank in the partition lattice: ``|S| - #blocks``.

        The finest partition has rank 0; the one-block partition has the
        maximum rank ``|S| - 1``.  Matches the paper's convention that
        rank-``i`` partitions have ``n - i`` blocks.
        """
        return self.size - self.n_blocks

    @property
    def type_composition(self) -> tuple[int, ...]:
        """Block sizes in min-of-block order (the partition's *type*).

        This is the composition used by the Loeb--Damiani--D'Antona
        construction: e.g. ``12/3/4`` has type ``(2, 1, 1)``.
        """
        return tuple(len(block) for block in self._blocks)

    def block_of(self, element: Element) -> tuple[Element, ...]:
        """Return the block containing ``element``."""
        try:
            return self._blocks[self._index[element]]
        except KeyError:
            raise KeyError(f"{element!r} is not in the ground set") from None

    def block_index_of(self, element: Element) -> int:
        """Return the min-ordered index of the block containing ``element``."""
        try:
            return self._index[element]
        except KeyError:
            raise KeyError(f"{element!r} is not in the ground set") from None

    def same_block(self, first: Element, second: Element) -> bool:
        """Return True if the two elements share a block."""
        return self.block_index_of(first) == self.block_index_of(second)

    def to_rgs(self, elements: Sequence[Element] | None = None) -> tuple[int, ...]:
        """Return the restricted-growth string over ``elements`` order.

        With the default element order (sorted ground set) the result is
        a canonical RGS; round-trips with :meth:`from_rgs`.
        """
        if elements is None:
            elements = sorted(self._ground)
        relabel: dict[int, int] = {}
        rgs: list[int] = []
        for element in elements:
            raw = self.block_index_of(element)
            if raw not in relabel:
                relabel[raw] = len(relabel)
            rgs.append(relabel[raw])
        return tuple(rgs)

    # ------------------------------------------------------------------
    # Order structure
    # ------------------------------------------------------------------

    def is_refinement_of(self, other: "SetPartition") -> bool:
        """Return True if ``self <= other``: every block of ``self`` lies
        inside a block of ``other`` (``self`` is finer)."""
        self._check_same_ground(other)
        for block in self._blocks:
            target = other.block_index_of(block[0])
            if any(other.block_index_of(element) != target for element in block[1:]):
                return False
        return True

    def is_coarsening_of(self, other: "SetPartition") -> bool:
        """Return True if ``self >= other`` in refinement order."""
        return other.is_refinement_of(self)

    def __le__(self, other: "SetPartition") -> bool:
        return self.is_refinement_of(other)

    def __lt__(self, other: "SetPartition") -> bool:
        return self != other and self.is_refinement_of(other)

    def __ge__(self, other: "SetPartition") -> bool:
        return other.is_refinement_of(self)

    def __gt__(self, other: "SetPartition") -> bool:
        return self != other and other.is_refinement_of(self)

    def meet(self, other: "SetPartition") -> "SetPartition":
        """Return the common refinement (greatest lower bound).

        Blocks of the meet are the non-empty pairwise intersections of
        blocks of the two operands.
        """
        self._check_same_ground(other)
        groups: dict[tuple[int, int], list[Element]] = {}
        for element in self._ground:
            key = (self.block_index_of(element), other.block_index_of(element))
            groups.setdefault(key, []).append(element)
        return SetPartition(groups.values())

    def join(self, other: "SetPartition") -> "SetPartition":
        """Return the finest common coarsening (least upper bound).

        Computed by union-find over the union of both block structures.
        """
        self._check_same_ground(other)
        parent: dict[Element, Element] = {element: element for element in self._ground}

        def find(x: Element) -> Element:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(x: Element, y: Element) -> None:
            root_x, root_y = find(x), find(y)
            if root_x != root_y:
                parent[root_x] = root_y

        for partition in (self, other):
            for block in partition.blocks:
                for element in block[1:]:
                    union(block[0], element)
        groups: dict[Element, list[Element]] = {}
        for element in self._ground:
            groups.setdefault(find(element), []).append(element)
        return SetPartition(groups.values())

    def covers(self, other: "SetPartition") -> bool:
        """Return True if ``self`` covers ``other`` in refinement order.

        In the partition lattice, ``pi'`` covers ``pi`` exactly when
        ``pi'`` is obtained from ``pi`` by merging two blocks.
        """
        if self.n_blocks != other.n_blocks - 1:
            return False
        return other.is_refinement_of(self)

    # ------------------------------------------------------------------
    # Lattice moves ("smushing")
    # ------------------------------------------------------------------

    def merge_blocks(self, first_index: int, second_index: int) -> "SetPartition":
        """Return the coarsening that merges the two indexed blocks.

        This is the paper's "smushing" move: selectively dissolving a
        block boundary to climb one level in the lattice.
        """
        if first_index == second_index:
            raise ValueError("cannot merge a block with itself")
        blocks = list(self._blocks)
        try:
            merged = blocks[first_index] + blocks[second_index]
        except IndexError:
            raise IndexError("block index out of range") from None
        remaining = [
            block
            for i, block in enumerate(blocks)
            if i not in (first_index, second_index)
        ]
        return SetPartition(remaining + [merged])

    def merge_elements(self, first: Element, second: Element) -> "SetPartition":
        """Return the coarsening placing the two elements in one block."""
        i, j = self.block_index_of(first), self.block_index_of(second)
        if i == j:
            return self
        return self.merge_blocks(i, j)

    def split_block(
        self, index: int, left: Iterable[Element], right: Iterable[Element]
    ) -> "SetPartition":
        """Return the refinement splitting block ``index`` into two parts."""
        left_t, right_t = tuple(left), tuple(right)
        try:
            block = self._blocks[index]
        except IndexError:
            raise IndexError("block index out of range") from None
        if set(left_t) | set(right_t) != set(block) or set(left_t) & set(right_t):
            raise ValueError("split parts must disjointly cover the block")
        if not left_t or not right_t:
            raise ValueError("split parts must be non-empty")
        others = [b for i, b in enumerate(self._blocks) if i != index]
        return SetPartition(others + [left_t, right_t])

    def upper_covers(self) -> Iterator["SetPartition"]:
        """Yield every partition covering ``self`` (merge one block pair)."""
        for i, j in itertools.combinations(range(self.n_blocks), 2):
            yield self.merge_blocks(i, j)

    def lower_covers(self) -> Iterator["SetPartition"]:
        """Yield every partition covered by ``self`` (split one block)."""
        for index, block in enumerate(self._blocks):
            if len(block) < 2:
                continue
            anchor, rest = block[0], block[1:]
            # Enumerate proper two-part splits once by always keeping the
            # anchor element in the left part.
            for mask in range(0, 2 ** len(rest) - 1):
                left = [anchor]
                right = []
                for bit, element in enumerate(rest):
                    if mask >> bit & 1:
                        left.append(element)
                    else:
                        right.append(element)
                yield self.split_block(index, left, right)

    def restrict(self, elements: Iterable[Element]) -> "SetPartition":
        """Return the induced partition on a subset of the ground set."""
        wanted = set(elements)
        missing = wanted - self._ground
        if missing:
            raise ValueError(f"elements not in ground set: {sorted(missing)!r}")
        if not wanted:
            raise ValueError("cannot restrict to an empty set")
        blocks = []
        for block in self._blocks:
            kept = tuple(element for element in block if element in wanted)
            if kept:
                blocks.append(kept)
        return SetPartition(blocks)

    # ------------------------------------------------------------------
    # Dunders
    # ------------------------------------------------------------------

    def _check_same_ground(self, other: "SetPartition") -> None:
        if self._ground != other._ground:
            raise ValueError("partitions are over different ground sets")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SetPartition):
            return NotImplemented
        return self._blocks == other._blocks

    def __hash__(self) -> int:
        return self._hash

    def __iter__(self) -> Iterator[tuple[Element, ...]]:
        return iter(self._blocks)

    def __len__(self) -> int:
        return len(self._blocks)

    def __repr__(self) -> str:
        inner = ", ".join("{" + ", ".join(map(repr, b)) + "}" for b in self._blocks)
        return f"SetPartition({inner})"

    def compact_str(self) -> str:
        """Render like the paper's Table I, e.g. ``'1/23/4'``."""
        return "/".join("".join(str(e) for e in block) for block in self._blocks)


def restricted_growth_strings(n: int) -> Iterator[tuple[int, ...]]:
    """Yield all restricted-growth strings of length ``n`` in lex order.

    RGS of length ``n`` are in bijection with partitions of an ``n``-set,
    so ``sum(1 for _ in restricted_growth_strings(n)) == bell_number(n)``.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if n == 0:
        return
    labels = [0] * n
    maxima = [0] * n

    while True:
        yield tuple(labels)
        position = n - 1
        while position > 0 and labels[position] == maxima[position - 1] + 1:
            position -= 1
        if position == 0:
            return
        labels[position] += 1
        maxima[position] = max(maxima[position - 1], labels[position])
        for i in range(position + 1, n):
            labels[i] = 0
            maxima[i] = maxima[position]


def all_partitions(elements: Sequence[Element]) -> Iterator[SetPartition]:
    """Yield every partition of ``elements`` (``bell_number(n)`` of them)."""
    ordered = sorted(elements)
    for rgs in restricted_growth_strings(len(ordered)):
        yield SetPartition.from_rgs(rgs, ordered)


def partitions_with_blocks(
    elements: Sequence[Element], k: int
) -> Iterator[SetPartition]:
    """Yield partitions of ``elements`` with exactly ``k`` blocks."""
    ordered = sorted(elements)
    n = len(ordered)
    if k < 1 or k > n:
        return
    for rgs in restricted_growth_strings(n):
        if max(rgs) == k - 1:
            yield SetPartition.from_rgs(rgs, ordered)


def random_partition(elements: Sequence[Element], rng) -> SetPartition:
    """Draw a uniformly random partition of ``elements``.

    First samples the block count ``k`` with probability proportional to
    ``S(n, k)``, then samples uniformly among ``k``-block partitions via
    the Stirling recurrence, so the overall draw is exactly uniform over
    all ``bell_number(n)`` partitions.  ``rng`` is a
    ``numpy.random.Generator``.
    """
    ordered = sorted(elements)
    n = len(ordered)
    if n == 0:
        raise ValueError("cannot partition an empty set")

    total = bell_number(n)
    threshold = rng.integers(0, total)
    k = 1
    cumulative = 0
    for candidate in range(1, n + 1):
        cumulative += stirling2(n, candidate)
        if threshold < cumulative:
            k = candidate
            break

    labels = [0] * n

    def assign(m: int, blocks: int) -> None:
        """Label elements 0..m-1 with a uniform (m, blocks)-partition."""
        if m == 0:
            return
        if blocks == m:
            for i in range(m):
                labels[i] = i
            return
        if blocks == 1:
            for i in range(m):
                labels[i] = 0
            return
        # Element m-1 is a singleton block with weight S(m-1, blocks-1),
        # otherwise it joins one of `blocks` blocks: weight blocks*S(m-1, blocks).
        singleton_weight = stirling2(m - 1, blocks - 1)
        join_weight = blocks * stirling2(m - 1, blocks)
        pick = rng.integers(0, singleton_weight + join_weight)
        if pick < singleton_weight:
            assign(m - 1, blocks - 1)
            labels[m - 1] = blocks - 1
        else:
            assign(m - 1, blocks)
            labels[m - 1] = int(rng.integers(0, blocks))

    assign(n, k)
    blocks_by_label: dict[int, list[Element]] = {}
    for element, label in zip(ordered, labels):
        blocks_by_label.setdefault(label, []).append(element)
    return SetPartition(blocks_by_label.values())
