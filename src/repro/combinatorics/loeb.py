"""The Loeb–Damiani–D'Antona partial symmetric chain decomposition of
the partition lattice (paper Sec. III, reference [11], Table I).

The construction transfers de Bruijn's symmetric chain decomposition of
the Boolean lattice ``B_n`` to the partition lattice ``Pi_{n+1}``:

1. **Encoding** ``c(S)``: a subset ``S ⊆ {1..n}`` is read as a set of
   "connectors" joining ``i`` and ``i+1`` on the path ``1 — 2 — ... —
   n+1``.  The connected components are intervals; digit ``d_j`` of
   ``c(S)`` is the size of the component whose right endpoint is ``j``
   (0 when ``j`` is interior to a component).  E.g. for ``n = 3``,
   ``c({2}) = 1021``.
2. **Type**: the non-zero digits of ``c(S)`` read right-to-left form a
   composition of ``n+1`` — the *partition type*.  A partition of
   ``[n+1]`` has type ``(λ_1, ..., λ_m)`` when its blocks, ordered by
   minimum element, have those sizes.  E.g. ``1021 → (1, 2, 1)`` whose
   partitions are ``1/23/4`` and ``1/24/3``.
3. **Chains**: walking up a de Bruijn chain adds one element ``i`` to
   ``S`` at a time, which merges the component ending at ``i`` into its
   right neighbour; on the partition side this merges two *adjacent*
   min-ordered blocks.  A type-``τ(S)`` partition has rank ``|S|`` in
   ``Pi_{n+1}``, so chains inherit rank symmetry from ``B_n``.
4. **Nesting**: the type classes grow towards the middle rank, so (as in
   de Bruijn's own construction) each level spawns *new, shorter*
   symmetric chains at the partitions not reached from below, while a
   chain started at rank ``j`` is cut off at rank ``n - j`` to stay
   symmetric.  Chains are threaded level-to-level by an injective map
   into the next type class — the canonical adjacent-block merge when it
   is injective, a bipartite cover matching otherwise.

The resulting chains are pairwise disjoint saturated symmetric chains
covering every partition of rank ``≤ ⌊(n-1)/2⌋``, and the collection is
maximal.  For ``n = 3`` the construction reproduces the paper's Table I
exactly, leaving the single partition ``134/2`` uncovered.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro.combinatorics.boolean import Subset, format_subset
from repro.combinatorics.debruijn import debruijn_scd
from repro.combinatorics.partitions import SetPartition, all_partitions
from repro.combinatorics.posets import (
    ChainDecompositionReport,
    validate_chain_decomposition,
)
from repro.combinatorics.stirling import bell_number, stirling2

__all__ = [
    "ldd_encoding",
    "ldd_type",
    "partitions_of_type",
    "merge_position",
    "ldd_chains",
    "ldd_table",
    "LddTableRow",
    "ldd_coverage_report",
    "LddCoverage",
    "symmetric_chain_cover_upper_bound",
    "validate_partition_scd",
]


def ldd_encoding(subset: Subset, n: int) -> tuple[int, ...]:
    """Return the digits ``c(S)`` of the LDD encoding, length ``n + 1``.

    >>> ldd_encoding(frozenset({2}), 3)
    (1, 0, 2, 1)
    >>> ldd_encoding(frozenset(), 3)
    (1, 1, 1, 1)
    """
    if any(element < 1 or element > n for element in subset):
        raise ValueError("subset is not within {1, ..., n}")
    digits = [0] * (n + 1)
    run_length = 0
    for position in range(1, n + 2):
        run_length += 1
        # Position `position` is a right endpoint unless the connector
        # `position` (an element of S) joins it to `position + 1`.
        if position not in subset:
            digits[position - 1] = run_length
            run_length = 0
    return tuple(digits)


def ldd_type(subset: Subset, n: int) -> tuple[int, ...]:
    """Return the composition type: non-zero digits of ``c(S)``, reversed.

    >>> ldd_type(frozenset({1}), 3)
    (1, 1, 2)
    >>> ldd_type(frozenset({3}), 3)
    (2, 1, 1)
    """
    digits = ldd_encoding(subset, n)
    return tuple(digit for digit in reversed(digits) if digit)


def partitions_of_type(
    composition: Sequence[int], elements: Sequence | None = None
) -> Iterator[SetPartition]:
    """Yield partitions whose min-ordered block sizes equal ``composition``.

    ``elements`` defaults to ``1..sum(composition)`` to match the
    paper's notation.  Blocks are constructed left to right; each block
    must contain the smallest element not yet placed, so the number of
    results is ``count_partitions_of_type(composition)``.

    >>> [p.compact_str() for p in partitions_of_type((2, 1, 1))]
    ['12/3/4', '13/2/4', '14/2/3']
    """
    composition = tuple(composition)
    if any(part <= 0 for part in composition):
        raise ValueError("composition parts must be positive")
    if elements is None:
        elements = list(range(1, sum(composition) + 1))
    else:
        elements = sorted(elements)
    if len(elements) != sum(composition):
        raise ValueError("element count must equal the composition total")

    import itertools

    def build(
        remaining: tuple, parts: tuple[int, ...], blocks: tuple
    ) -> Iterator[SetPartition]:
        if not parts:
            yield SetPartition(blocks)
            return
        head, *tail = remaining
        for chosen in itertools.combinations(tuple(remaining)[1:], parts[0] - 1):
            block = (head,) + chosen
            rest = tuple(e for e in remaining if e not in block)
            yield from build(rest, tuple(parts[1:]), blocks + (block,))

    yield from build(tuple(elements), composition, ())


def merge_position(subset: Subset, added: int, n: int) -> int:
    """Return the 0-based min-ordered block index ``p`` such that adding
    ``added`` to ``subset`` merges blocks ``p`` and ``p + 1``.

    ``added`` must not already be in ``subset``.  In the digit string
    ``c(S)``, position ``added`` holds the ``t``-th non-zero digit (its
    component's right endpoint) and merges into the next component; in
    the reversed (type) order this merges min-ordered blocks ``m - t``
    and ``m - t + 1`` (1-based), i.e. index ``m - t - 1`` (0-based).
    """
    if added in subset:
        raise ValueError(f"{added} is already in the subset")
    digits = ldd_encoding(subset, n)
    if digits[added - 1] == 0:
        raise AssertionError("an absent connector must end its component")
    nonzero_index = sum(1 for digit in digits[:added] if digit)  # t, 1-based
    n_parts = sum(1 for digit in digits if digit)  # m
    return n_parts - nonzero_index - 1


def _thread_level(
    tops: Sequence[SetPartition],
    target_pool: Sequence[SetPartition],
    merge_hint: int,
) -> list[SetPartition]:
    """Assign to each chain top a distinct cover inside ``target_pool``.

    Tries the canonical adjacent-block merge first (which reproduces the
    paper's Table I); when that map collides, falls back to a maximum
    bipartite matching over all covers of the right type.  Raises if the
    tops cannot all be threaded — by the LDD theorem this does not
    happen for the pools produced by :func:`ldd_chains`.
    """
    images = [top.merge_blocks(merge_hint, merge_hint + 1) for top in tops]
    if len(set(images)) == len(images):
        return images

    import networkx as nx

    target_set = set(target_pool)
    graph = nx.Graph()
    left = [("top", i) for i in range(len(tops))]
    graph.add_nodes_from(left, bipartite=0)
    for i, top in enumerate(tops):
        for a in range(top.n_blocks):
            for b in range(a + 1, top.n_blocks):
                cover = top.merge_blocks(a, b)
                if cover in target_set:
                    graph.add_node(("pool", cover), bipartite=1)
                    graph.add_edge(("top", i), ("pool", cover))
    matching = nx.bipartite.maximum_matching(graph, top_nodes=left)
    chosen: list[SetPartition] = []
    for i in range(len(tops)):
        key = ("top", i)
        if key not in matching:
            raise AssertionError(
                "LDD threading failed: no saturating cover matching"
            )
        chosen.append(matching[key][1])
    return chosen


def ldd_chains(n: int) -> list[tuple[SetPartition, ...]]:
    """Return the LDD collection of disjoint symmetric chains of ``Pi_{n+1}``.

    Each chain is a bottom-up tuple of :class:`SetPartition` over the
    ground set ``{1, ..., n+1}``.  Chains are nested per de Bruijn group:
    a chain entering rank ``j`` from below is continued while it can
    still reach its symmetric endpoint ``n - j``; partitions of the
    current type class not reached from below start new shorter chains
    (only while ``rank <= n/2``, otherwise they stay uncovered).  For
    ``n = 3`` this returns the six chains implicit in the paper's
    Table I.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    chains: list[tuple[SetPartition, ...]] = []
    for boolean_chain in debruijn_scd(n):
        bottom_level = len(boolean_chain[0])
        pools = [
            tuple(partitions_of_type(ldd_type(subset, n)))
            for subset in boolean_chain
        ]
        merge_hints: list[int] = []
        for current, upper in zip(boolean_chain, boolean_chain[1:]):
            (added,) = tuple(upper - current)
            merge_hints.append(merge_position(current, added, n))

        # Live chains carry their start level so they can be cut off at
        # the symmetric endpoint n - start.
        live: list[tuple[list[SetPartition], int]] = [
            ([partition], bottom_level) for partition in pools[0]
        ]
        finished: list[list[SetPartition]] = []
        for step, hint in enumerate(merge_hints):
            level = bottom_level + step
            continuing: list[tuple[list[SetPartition], int]] = []
            for chain, start in live:
                if n - start >= level + 1:
                    continuing.append((chain, start))
                else:
                    finished.append(chain)
            images = _thread_level(
                [chain[-1] for chain, _ in continuing], pools[step + 1], hint
            )
            used = set(images)
            for (chain, _), image in zip(continuing, images):
                chain.append(image)
            live = continuing
            next_level = level + 1
            if next_level <= n - next_level:
                for partition in pools[step + 1]:
                    if partition not in used:
                        live.append(([partition], next_level))
        finished.extend(chain for chain, _ in live)
        chains.extend(tuple(chain) for chain in finished)
    return chains


@dataclass(frozen=True)
class LddTableRow:
    """One row of the paper's Table I."""

    subset: Subset
    encoding: tuple[int, ...]
    type_composition: tuple[int, ...]
    partitions: tuple[SetPartition, ...]

    def format(self) -> str:
        """Render the row in the paper's style."""
        digits = "".join(str(d) for d in self.encoding)
        type_str = "".join(str(part) for part in self.type_composition)
        parts = ", ".join(p.compact_str() for p in self.partitions)
        return f"{format_subset(self.subset)} | {digits} -> {type_str} | {parts}"


def ldd_table(n: int) -> list[list[LddTableRow]]:
    """Reproduce Table I: rows grouped by de Bruijn chain of ``B_n``.

    Each row shows a subset ``S``, its encoding ``c(S)``, the resulting
    type, and *all* partitions of that type (the candidate pool listed
    by the paper; the chains of :func:`ldd_chains` thread through these
    pools).
    """
    groups: list[list[LddTableRow]] = []
    for boolean_chain in debruijn_scd(n):
        rows = [
            LddTableRow(
                subset=subset,
                encoding=ldd_encoding(subset, n),
                type_composition=ldd_type(subset, n),
                partitions=tuple(partitions_of_type(ldd_type(subset, n))),
            )
            for subset in boolean_chain
        ]
        groups.append(rows)
    return groups


@dataclass(frozen=True)
class LddCoverage:
    """Coverage statistics of the LDD chain collection over ``Pi_{n+1}``."""

    n: int
    n_chains: int
    n_partitions_total: int
    n_partitions_covered: int
    uncovered_by_rank: dict[int, int]
    guaranteed_rank: int
    low_ranks_fully_covered: bool
    counting_upper_bound: int

    @property
    def maximal_by_counting(self) -> bool:
        """True when coverage meets the rank-profile counting bound."""
        return self.n_partitions_covered >= self.counting_upper_bound


def symmetric_chain_cover_upper_bound(profile: Sequence[int]) -> int:
    """Counting upper bound on elements coverable by disjoint symmetric
    chains in a ranked poset with the given rank profile.

    A symmetric chain spanning ranks ``[i, r - i]`` consumes one element
    at every rank in between, so with ``k_i`` chains of span ``i`` the
    rank-``j`` budget forces ``sum(k_i for i <= min(j, r - j)) <=
    profile[j]``.  The nesting of these constraints makes the greedy
    allocation (longest chains first) optimal.
    """
    profile = list(profile)
    r = len(profile) - 1
    allocated = 0
    covered = 0
    for i in range(r // 2 + 1):
        if i > r - i:
            break
        budget = min(profile[j] for j in range(i, r - i + 1))
        k_i = max(0, budget - allocated)
        covered += k_i * (r - 2 * i + 1)
        allocated += k_i
    return covered


def ldd_coverage_report(n: int) -> LddCoverage:
    """Measure the LDD collection against the paper's claims for ``Pi_{n+1}``.

    Verifies (by exhaustive enumeration, so intended for small ``n``)
    that the chains cover every partition of rank ``≤ ⌊(n-1)/2⌋`` and
    reports the counting-bound maximality statistic.
    """
    chains = ldd_chains(n)
    covered: set[SetPartition] = set()
    for chain in chains:
        covered.update(chain)
    elements = list(range(1, n + 2))
    total = bell_number(n + 1)
    uncovered_by_rank: dict[int, int] = {}
    for partition in all_partitions(elements):
        if partition not in covered:
            rank = partition.rank
            uncovered_by_rank[rank] = uncovered_by_rank.get(rank, 0) + 1
    guaranteed = (n - 1) // 2
    low_ok = all(rank > guaranteed for rank in uncovered_by_rank)
    profile = [stirling2(n + 1, n + 1 - i) for i in range(n + 1)]
    return LddCoverage(
        n=n,
        n_chains=len(chains),
        n_partitions_total=total,
        n_partitions_covered=len(covered),
        uncovered_by_rank=uncovered_by_rank,
        guaranteed_rank=guaranteed,
        low_ranks_fully_covered=low_ok,
        counting_upper_bound=symmetric_chain_cover_upper_bound(profile),
    )


def validate_partition_scd(
    chains: Sequence[Sequence[SetPartition]], n: int
) -> ChainDecompositionReport:
    """Validate chains of ``Pi_{n+1}``: saturated, symmetric, disjoint."""
    return validate_chain_decomposition(
        chains,
        rank_of=lambda partition: partition.rank,
        covers=lambda upper, lower: upper.covers(lower),
        poset_rank=n,
    )
