"""Combinatorial substrate: partitions, lattices, chain decompositions.

Implements the mathematics of the paper's Section III — the partition
lattice ``Pi(S)``, Boolean lattice ``B_n``, de Bruijn's symmetric chain
decomposition, and the Loeb–Damiani–D'Antona partial decomposition of
``Pi_{n+1}`` that Table I illustrates.
"""

from repro.combinatorics.boolean import (
    all_subsets,
    boolean_hasse,
    format_subset,
    ground_set,
    subset_covers,
    subset_rank,
    subsets_of_size,
)
from repro.combinatorics.debruijn import (
    debruijn_scd,
    greene_kleitman_chain,
    greene_kleitman_scd,
    validate_boolean_scd,
)
from repro.combinatorics.lattice import (
    ConeExploration,
    PartitionLattice,
    coarsening_moves,
    cone_partitions,
    cone_size,
    lift_chain,
    lift_chains_to_cone,
    merge_chain,
    principal_chain,
    refinement_moves,
)
from repro.combinatorics.loeb import (
    LddCoverage,
    LddTableRow,
    ldd_chains,
    ldd_coverage_report,
    ldd_encoding,
    ldd_table,
    ldd_type,
    merge_position,
    partitions_of_type,
    symmetric_chain_cover_upper_bound,
    validate_partition_scd,
)
from repro.combinatorics.moebius import (
    boolean_moebius,
    characteristic_polynomial,
    evaluate_polynomial,
    generic_moebius_matrix,
    moebius_bottom,
    moebius_partition_interval,
    stirling1_signed,
    stirling1_unsigned,
    whitney_numbers_first_kind,
)
from repro.combinatorics.partitions import (
    SetPartition,
    all_partitions,
    partitions_with_blocks,
    random_partition,
    restricted_growth_strings,
)
from repro.combinatorics.posets import (
    Chain,
    ChainDecompositionReport,
    hasse_diagram,
    is_saturated_chain,
    is_symmetric_chain,
    longest_antichain_size,
    validate_chain_decomposition,
)
from repro.combinatorics.stirling import (
    bell_number,
    bell_triangle,
    binomial,
    compositions,
    count_compositions,
    count_partitions_of_type,
    falling_factorial,
    stirling2,
    stirling2_row,
    whitney_numbers,
)

__all__ = [
    # partitions
    "SetPartition",
    "all_partitions",
    "partitions_with_blocks",
    "random_partition",
    "restricted_growth_strings",
    # counting
    "bell_number",
    "bell_triangle",
    "binomial",
    "compositions",
    "count_compositions",
    "count_partitions_of_type",
    "falling_factorial",
    "stirling2",
    "stirling2_row",
    "whitney_numbers",
    # posets
    "Chain",
    "ChainDecompositionReport",
    "hasse_diagram",
    "is_saturated_chain",
    "is_symmetric_chain",
    "longest_antichain_size",
    "validate_chain_decomposition",
    # boolean lattice
    "all_subsets",
    "boolean_hasse",
    "format_subset",
    "ground_set",
    "subset_covers",
    "subset_rank",
    "subsets_of_size",
    # de Bruijn SCD
    "debruijn_scd",
    "greene_kleitman_chain",
    "greene_kleitman_scd",
    "validate_boolean_scd",
    # LDD decomposition
    "LddCoverage",
    "LddTableRow",
    "ldd_chains",
    "ldd_coverage_report",
    "ldd_encoding",
    "ldd_table",
    "ldd_type",
    "merge_position",
    "partitions_of_type",
    "symmetric_chain_cover_upper_bound",
    "validate_partition_scd",
    # moebius layer
    "boolean_moebius",
    "characteristic_polynomial",
    "evaluate_polynomial",
    "generic_moebius_matrix",
    "moebius_bottom",
    "moebius_partition_interval",
    "stirling1_signed",
    "stirling1_unsigned",
    "whitney_numbers_first_kind",
    # lattice navigation
    "ConeExploration",
    "PartitionLattice",
    "coarsening_moves",
    "cone_partitions",
    "cone_size",
    "lift_chain",
    "lift_chains_to_cone",
    "merge_chain",
    "principal_chain",
    "refinement_moves",
]
