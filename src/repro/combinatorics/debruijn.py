"""Symmetric chain decompositions of the Boolean lattice ``B_n``.

Two classic constructions are implemented:

* :func:`debruijn_scd` — the inductive construction of de Bruijn, van
  Ebbenhorst Tengbergen and Kruyswijk (1951), cited by the paper as
  "de Bruijn's decomposition" [12].  From each chain
  ``x_1 < ... < x_k`` of the decomposition of ``B_{n-1}`` it produces
  ``x_1 < ... < x_k < x_k ∪ {n}`` and (when ``k > 1``)
  ``x_1 ∪ {n} < ... < x_{k-1} ∪ {n}``.
* :func:`greene_kleitman_chain` / :func:`greene_kleitman_scd` — the
  bracketing construction of Greene and Kleitman, which produces the
  same decomposition and serves as a cross-check and as an O(n) oracle
  for the chain through a single subset.

For ``B_3`` both reproduce the chains quoted in the paper:
``(∅, {1}, {1,2}, {1,2,3})``, ``({2}, {2,3})`` and ``({3}, {1,3})``.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.combinatorics.boolean import Subset, all_subsets, subset_covers, subset_rank
from repro.combinatorics.posets import (
    ChainDecompositionReport,
    validate_chain_decomposition,
)

__all__ = [
    "debruijn_scd",
    "greene_kleitman_chain",
    "greene_kleitman_scd",
    "validate_boolean_scd",
]


def debruijn_scd(n: int) -> list[tuple[Subset, ...]]:
    """Return the de Bruijn symmetric chain decomposition of ``B_n``.

    Chains are tuples of frozensets ordered bottom-up.  The output order
    is deterministic: chains derived from earlier chains (and the "long"
    extension before the "short" one) come first, which for ``B_3``
    yields exactly the paper's ``C_1, C_3, C_2`` chain set.

    >>> [[sorted(s) for s in chain] for chain in debruijn_scd(1)]
    [[[], [1]]]
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    chains: list[tuple[Subset, ...]] = [(frozenset(),)]
    for element in range(1, n + 1):
        next_chains: list[tuple[Subset, ...]] = []
        for chain in chains:
            extended = chain + (chain[-1] | {element},)
            next_chains.append(extended)
            if len(chain) > 1:
                shifted = tuple(subset | {element} for subset in chain[:-1])
                next_chains.append(shifted)
        chains = next_chains
    return chains


def _bracket_structure(subset: Subset, n: int) -> tuple[list[int], list[int]]:
    """Match the bracket word of ``subset`` (members are ')' and
    non-members '(') and return (matched_closes, unmatched_positions).

    After maximal matching the unmatched positions always read as a run
    of closes followed by a run of opens, which is the chain invariant.
    """
    stack: list[int] = []
    matched_closes: list[int] = []
    unmatched_closes: list[int] = []
    for position in range(1, n + 1):
        if position in subset:
            if stack:
                stack.pop()
                matched_closes.append(position)
            else:
                unmatched_closes.append(position)
        else:
            stack.append(position)
    unmatched = sorted(unmatched_closes + stack)
    return matched_closes, unmatched


def greene_kleitman_chain(subset: Subset, n: int) -> tuple[Subset, ...]:
    """Return the full symmetric chain through ``subset`` in ``B_n``.

    The chain fixes the matched closing brackets and sweeps the
    unmatched positions from all-open to all-closed, left to right.
    """
    if any(element < 1 or element > n for element in subset):
        raise ValueError("subset is not within {1, ..., n}")
    matched_closes, unmatched = _bracket_structure(subset, n)
    base = frozenset(matched_closes)
    return tuple(
        base | frozenset(unmatched[:taken]) for taken in range(len(unmatched) + 1)
    )


def greene_kleitman_scd(n: int) -> list[tuple[Subset, ...]]:
    """Return the Greene–Kleitman SCD of ``B_n`` (one chain per orbit)."""
    seen: set[Subset] = set()
    chains: list[tuple[Subset, ...]] = []
    for subset in all_subsets(n):
        if subset in seen:
            continue
        chain = greene_kleitman_chain(subset, n)
        chains.append(chain)
        seen.update(chain)
    return chains


def validate_boolean_scd(
    chains: Sequence[Sequence[Subset]], n: int
) -> ChainDecompositionReport:
    """Validate that ``chains`` is a genuine SCD of ``B_n``.

    Checks saturation, rank symmetry (``|bottom| + |top| == n``),
    disjointness, and that all ``2**n`` subsets are covered (the latter
    via the report's ``n_elements_covered``).
    """
    return validate_chain_decomposition(
        chains,
        rank_of=subset_rank,
        covers=subset_covers,
        poset_rank=n,
    )
