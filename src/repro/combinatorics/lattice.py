"""Partition-lattice navigation: cones, chains, and exploration budgets.

Section III of the paper frames kernel selection as a walk over the
partition lattice of the feature set ``S``: starting from a two-block
partition ``(K, S - K)``, refine the block ``S - K`` (the lattice lower
cone) looking for the partition whose induced multiple-kernel
configuration performs best.  Exhaustive exploration of the cone costs a
sum of Stirling numbers (a Bell number); the symmetric-chain strategy
explores one saturated chain at a time, evaluating a number of
configurations linear in ``|S - K|``.

This module provides the lattice-level plumbing used by
``repro.mkl.partition_search``: cone enumeration, chain lifting, and
exact cost accounting, independent of any learning machinery.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

import networkx as nx

from repro.combinatorics.loeb import ldd_chains
from repro.combinatorics.partitions import (
    Element,
    SetPartition,
    all_partitions,
    partitions_with_blocks,
    random_partition,
)
from repro.combinatorics.posets import hasse_diagram
from repro.combinatorics.stirling import bell_number, stirling2

__all__ = [
    "PartitionLattice",
    "ConeExploration",
    "cone_partitions",
    "cone_size",
    "coarsening_moves",
    "lift_chains_to_cone",
    "lift_chain",
    "merge_chain",
    "principal_chain",
    "refinement_moves",
]


class PartitionLattice:
    """The lattice ``Pi(S)`` of partitions of a finite element set.

    Thin, stateless facade bundling enumeration, counting, and Hasse
    construction for a fixed ground set.  Enumeration is lazy, so large
    ground sets are fine as long as callers do not exhaust them.
    """

    def __init__(self, elements: Sequence[Element]):
        ordered = sorted(set(elements))
        if not ordered:
            raise ValueError("the ground set must be non-empty")
        if len(ordered) != len(list(elements)):
            raise ValueError("elements must be distinct")
        self._elements: tuple[Element, ...] = tuple(ordered)

    @property
    def elements(self) -> tuple[Element, ...]:
        return self._elements

    @property
    def size(self) -> int:
        """Number of ground-set elements ``n``."""
        return len(self._elements)

    @property
    def rank(self) -> int:
        """Lattice rank ``n - 1``."""
        return self.size - 1

    def count_partitions(self) -> int:
        """Total number of partitions: the Bell number ``B(n)``."""
        return bell_number(self.size)

    def count_at_rank(self, rank: int) -> int:
        """Number of partitions at the given rank: ``S(n, n - rank)``."""
        return stirling2(self.size, self.size - rank)

    def rank_profile(self) -> list[int]:
        """Whitney numbers indexed by rank (the paper's level counts)."""
        return [self.count_at_rank(rank) for rank in range(self.size)]

    def finest(self) -> SetPartition:
        """The all-singletons partition (rank 0)."""
        return SetPartition.singletons(self._elements)

    def coarsest(self) -> SetPartition:
        """The one-block partition (rank ``n - 1``)."""
        return SetPartition.coarsest(self._elements)

    def __iter__(self) -> Iterator[SetPartition]:
        return all_partitions(self._elements)

    def iter_rank(self, rank: int) -> Iterator[SetPartition]:
        """Yield the partitions at one rank (``n - rank`` blocks)."""
        return partitions_with_blocks(self._elements, self.size - rank)

    def random(self, rng) -> SetPartition:
        """Uniformly random partition (exact, via Stirling sampling)."""
        return random_partition(self._elements, rng)

    def hasse(self) -> nx.DiGraph:
        """Hasse diagram (edges finer -> coarser).  Small ``n`` only."""
        nodes = list(self)
        return hasse_diagram(nodes, lambda upper, lower: upper.covers(lower))

    def symmetric_chains(self) -> list[tuple[SetPartition, ...]]:
        """LDD symmetric chains of this lattice, relabelled to the
        ground set (``Pi_n`` is handled as ``Pi_{(n-1)+1}``)."""
        if self.size == 1:
            return [(self.coarsest(),)]
        chains = ldd_chains(self.size - 1)
        relabel = {i + 1: element for i, element in enumerate(self._elements)}
        return [
            tuple(
                SetPartition(
                    [tuple(relabel[e] for e in block) for block in partition.blocks]
                )
                for partition in chain
            )
            for chain in chains
        ]


def cone_size(rest_size: int) -> int:
    """Number of partitions in the lower cone rooted at ``(K, S - K)``.

    The cone is isomorphic to ``Pi(S - K)``, so its size is the Bell
    number of ``|S - K|`` — the exhaustive-exploration cost quoted by
    the paper (a sum of Stirling numbers of the second kind).
    """
    return bell_number(rest_size)


def cone_partitions(
    seed_block: Sequence[Element], rest: Sequence[Element]
) -> Iterator[SetPartition]:
    """Yield all partitions of ``S`` that keep ``seed_block`` intact and
    refine ``S - K`` in every possible way (the lattice lower cone).

    Each yielded partition has ``seed_block`` as one block plus the
    blocks of some partition of ``rest``.
    """
    seed = tuple(seed_block)
    if not seed:
        raise ValueError("the seed block K must be non-empty")
    overlap = set(seed) & set(rest)
    if overlap:
        raise ValueError(f"K and S-K overlap: {sorted(overlap)!r}")
    if not rest:
        yield SetPartition([seed])
        return
    for sub_partition in all_partitions(list(rest)):
        yield SetPartition(sub_partition.blocks + (seed,))


def lift_chain(
    seed_block: Sequence[Element], chain: Sequence[SetPartition]
) -> tuple[SetPartition, ...]:
    """Lift a chain of ``Pi(S - K)`` into the cone by adding block ``K``."""
    seed = tuple(seed_block)
    if not seed:
        raise ValueError("the seed block K must be non-empty")
    return tuple(
        SetPartition(partition.blocks + (seed,)) for partition in chain
    )


def lift_chains_to_cone(
    seed_block: Sequence[Element], rest: Sequence[Element]
) -> list[tuple[SetPartition, ...]]:
    """Return the LDD symmetric chains of ``Pi(S - K)`` lifted into the
    cone: every chain member gains ``seed_block`` as an extra block.

    Walking one lifted chain evaluates at most ``|S - K|``
    configurations — the linear search the paper advocates.
    """
    seed = tuple(seed_block)
    if not seed:
        raise ValueError("the seed block K must be non-empty")
    if not rest:
        return [(SetPartition([seed]),)]
    lattice = PartitionLattice(list(rest))
    return [
        tuple(
            SetPartition(partition.blocks + (seed,)) for partition in chain
        )
        for chain in lattice.symmetric_chains()
    ]


def refinement_moves(
    partition: SetPartition,
    frozen: Iterable[Sequence[Element]] = (),
) -> Iterator[SetPartition]:
    """Yield every cover *below* a partition: split one block in two.

    These are the downward lattice moves used by frontier searches
    (beam, best-first) descending a cone: the partition's
    :meth:`~repro.combinatorics.partitions.SetPartition.lower_covers`
    restricted to moves that keep every ``frozen`` block (e.g. the seed
    block ``K``) intact, which confines the walk to the cone.
    """
    frozen_keys = {tuple(sorted(block)) for block in frozen}
    for child in partition.lower_covers():
        if all(key in child.blocks for key in frozen_keys):
            yield child


def coarsening_moves(
    partition: SetPartition,
    frozen: Iterable[Sequence[Element]] = (),
) -> Iterator[SetPartition]:
    """Yield every cover *above* a partition: merge two blocks.

    The upward counterpart of :func:`refinement_moves` ("smushing" one
    block boundary): :meth:`~repro.combinatorics.partitions.SetPartition.
    upper_covers` restricted to merges leaving every ``frozen`` block
    intact.
    """
    frozen_keys = {tuple(sorted(block)) for block in frozen}
    for parent in partition.upper_covers():
        if all(key in parent.blocks for key in frozen_keys):
            yield parent


def merge_chain(ordered: Sequence[Element]) -> tuple[SetPartition, ...]:
    """Return the full-span saturated chain that grows one suffix block.

    Element ``r`` of the chain keeps the first ``n - 1 - r`` elements of
    ``ordered`` as singletons and groups the suffix into one block, so
    the chain runs from the finest partition (rank 0) to the one-block
    partition (rank ``n - 1``) merging the last two min-ordered blocks
    at every step.  Built directly in O(n^2) — no decomposition needed.
    """
    ordered = list(ordered)
    n = len(ordered)
    if n == 0:
        raise ValueError("need at least one element")
    chain = []
    for r in range(n):
        head = ordered[: n - 1 - r]
        tail = ordered[n - 1 - r :]
        chain.append(SetPartition([(e,) for e in head] + [tuple(tail)]))
    return tuple(chain)


def principal_chain(elements: Sequence[Element]) -> tuple[SetPartition, ...]:
    """Return the principal full-span symmetric chain of ``Pi(elements)``.

    This is the first chain of the LDD decomposition (the image of de
    Bruijn's chain ``∅ ⊂ {1} ⊂ {1,2} ⊂ ...``): for sorted elements it
    merges the last two blocks repeatedly, e.g. ``1/2/3/4 < 1/2/34 <
    1/234 < 1234``.  Its length is exactly ``len(elements)``, giving the
    linear-cost walk from many small kernels to a single global kernel.
    """
    return merge_chain(sorted(elements))


@dataclass(frozen=True)
class ConeExploration:
    """Cost ledger comparing exploration strategies for one cone.

    ``exhaustive_evaluations`` is the Bell-number cone size; the chain
    strategies report how many distinct configurations they touch.  Used
    by the complexity benchmarks (experiment C1).
    """

    rest_size: int
    exhaustive_evaluations: int
    single_chain_evaluations: int
    all_chains_evaluations: int
    n_chains: int

    @classmethod
    def for_rest_size(cls, rest_size: int) -> "ConeExploration":
        """Compute the ledger for a cone over ``rest_size`` features."""
        if rest_size < 1:
            raise ValueError("rest_size must be positive")
        elements = list(range(rest_size))
        lattice = PartitionLattice(elements)
        chains = lattice.symmetric_chains()
        return cls(
            rest_size=rest_size,
            exhaustive_evaluations=cone_size(rest_size),
            single_chain_evaluations=rest_size,
            all_chains_evaluations=sum(len(chain) for chain in chains),
            n_chains=len(chains),
        )
