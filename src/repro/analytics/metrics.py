"""Classification metrics (from scratch, numpy only)."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = [
    "accuracy_score",
    "error_rate",
    "confusion_matrix",
    "precision_recall_f1",
    "macro_f1",
    "log_loss",
]


def _as_arrays(y_true: Sequence, y_pred: Sequence) -> tuple[np.ndarray, np.ndarray]:
    true_array = np.asarray(y_true)
    pred_array = np.asarray(y_pred)
    if true_array.shape != pred_array.shape:
        raise ValueError(
            f"shape mismatch: {true_array.shape} vs {pred_array.shape}"
        )
    if true_array.size == 0:
        raise ValueError("metrics need at least one sample")
    return true_array, pred_array


def accuracy_score(y_true: Sequence, y_pred: Sequence) -> float:
    """Fraction of exact label matches."""
    true_array, pred_array = _as_arrays(y_true, y_pred)
    return float(np.mean(true_array == pred_array))


def error_rate(y_true: Sequence, y_pred: Sequence) -> float:
    """``1 - accuracy``."""
    return 1.0 - accuracy_score(y_true, y_pred)


def confusion_matrix(
    y_true: Sequence, y_pred: Sequence, labels: Sequence | None = None
) -> tuple[np.ndarray, list]:
    """Return (matrix, label_order); ``matrix[i, j]`` counts true ``i``
    predicted as ``j``."""
    true_array, pred_array = _as_arrays(y_true, y_pred)
    if labels is None:
        labels = sorted(set(true_array.tolist()) | set(pred_array.tolist()))
    labels = list(labels)
    index = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=int)
    for true_label, pred_label in zip(true_array.tolist(), pred_array.tolist()):
        matrix[index[true_label], index[pred_label]] += 1
    return matrix, labels


def precision_recall_f1(
    y_true: Sequence, y_pred: Sequence, positive
) -> tuple[float, float, float]:
    """Binary precision, recall and F1 for the given positive label."""
    true_array, pred_array = _as_arrays(y_true, y_pred)
    true_positive = np.sum((true_array == positive) & (pred_array == positive))
    predicted_positive = np.sum(pred_array == positive)
    actual_positive = np.sum(true_array == positive)
    precision = true_positive / predicted_positive if predicted_positive else 0.0
    recall = true_positive / actual_positive if actual_positive else 0.0
    if precision + recall == 0:
        f1 = 0.0
    else:
        f1 = 2 * precision * recall / (precision + recall)
    return float(precision), float(recall), float(f1)


def macro_f1(y_true: Sequence, y_pred: Sequence) -> float:
    """Unweighted mean of per-class F1 scores."""
    true_array, pred_array = _as_arrays(y_true, y_pred)
    labels = sorted(set(true_array.tolist()) | set(pred_array.tolist()))
    scores = [precision_recall_f1(true_array, pred_array, label)[2] for label in labels]
    return float(np.mean(scores))


def log_loss(y_true: Sequence, probabilities: Sequence[float], epsilon: float = 1e-12) -> float:
    """Binary cross-entropy; ``y_true`` in {0,1} or {-1,+1},
    ``probabilities`` are P(positive)."""
    true_array = np.asarray(y_true, dtype=float).ravel()
    prob_array = np.clip(np.asarray(probabilities, dtype=float).ravel(), epsilon, 1 - epsilon)
    if set(np.unique(true_array)) <= {-1.0, 1.0}:
        true_array = (true_array + 1) / 2
    if true_array.shape != prob_array.shape:
        raise ValueError("shape mismatch between labels and probabilities")
    return float(
        -np.mean(true_array * np.log(prob_array) + (1 - true_array) * np.log(1 - prob_array))
    )
