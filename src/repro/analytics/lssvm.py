"""Least-squares SVM (Suykens & Vandewalle) — closed-form kernel classifier.

Replaces the SVM's inequality constraints with equalities, so training
reduces to one linear solve:

    [ 0   y^T          ] [ b     ]   [ 0 ]
    [ y   Omega + I/gam ] [ alpha ] = [ 1 ]

with ``Omega_ij = y_i y_j K_ij``.  Orders of magnitude faster than SMO
for the many small problems the lattice search trains, at essentially
equal accuracy; the test suite cross-checks the two.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import Kernel, as_2d

__all__ = ["LSSVC"]


class LSSVC:
    """Binary least-squares SVM with bias.

    Accepts a :class:`Kernel` or ``"precomputed"`` Grams exactly like
    :class:`repro.analytics.svm.KernelSVC`.
    """

    def __init__(self, kernel: Kernel | str, gamma: float = 1.0):
        if gamma <= 0:
            raise ValueError("gamma (regularisation) must be positive")
        self.kernel = kernel
        self.gamma = float(gamma)
        self._alpha: np.ndarray | None = None
        self._bias = 0.0
        self._signs: np.ndarray | None = None
        self._train_X: np.ndarray | None = None
        self.classes_: tuple | None = None

    def _gram_train(self, X: np.ndarray) -> np.ndarray:
        if isinstance(self.kernel, str):
            if self.kernel != "precomputed":
                raise ValueError("kernel must be a Kernel or 'precomputed'")
            gram = np.asarray(X, dtype=float)
            if gram.shape[0] != gram.shape[1]:
                raise ValueError("precomputed training Gram must be square")
            return gram
        self._train_X = as_2d(X)
        return self.kernel(self._train_X)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LSSVC":
        labels = np.asarray(y).ravel()
        classes = sorted(set(labels.tolist()))
        if len(classes) != 2:
            raise ValueError(f"binary LSSVC needs exactly 2 classes, got {classes!r}")
        self.classes_ = tuple(classes)
        signs = np.where(labels == classes[1], 1.0, -1.0)

        gram = self._gram_train(X)
        n = gram.shape[0]
        if signs.size != n:
            raise ValueError("label count must match sample count")
        omega = (signs[:, None] * signs[None, :]) * gram
        system = np.zeros((n + 1, n + 1))
        system[0, 1:] = signs
        system[1:, 0] = signs
        system[1:, 1:] = omega + np.eye(n) / self.gamma
        rhs = np.concatenate([[0.0], np.ones(n)])
        try:
            solution = np.linalg.solve(system, rhs)
        except np.linalg.LinAlgError:
            solution, *_ = np.linalg.lstsq(system, rhs, rcond=None)
        self._bias = float(solution[0])
        self._alpha = solution[1:]
        self._signs = signs
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self._alpha is None or self._signs is None:
            raise RuntimeError("fit must be called before prediction")
        if isinstance(self.kernel, str):
            cross = np.asarray(X, dtype=float)
            if cross.shape[1] != self._alpha.size:
                raise ValueError(
                    "precomputed predict Gram must have one column per training sample"
                )
        else:
            cross = self.kernel(as_2d(X), self._train_X)
        return cross @ (self._alpha * self._signs) + self._bias

    def predict(self, X: np.ndarray) -> np.ndarray:
        scores = self.decision_function(X)
        assert self.classes_ is not None
        negative, positive = self.classes_
        return np.where(scores >= 0, positive, negative)
