"""Gaussian naive Bayes baseline (numpy only)."""

from __future__ import annotations

import numpy as np

__all__ = ["GaussianNB"]


class GaussianNB:
    """Classic Gaussian naive Bayes with variance smoothing.

    Missing values (NaN) are ignored per-feature at fit time and skipped
    in the log-likelihood at predict time, which makes the model a
    natural no-imputation baseline for the Sec. IV.A experiment.
    """

    def __init__(self, var_smoothing: float = 1e-9):
        if var_smoothing <= 0:
            raise ValueError("var_smoothing must be positive")
        self.var_smoothing = float(var_smoothing)
        self.classes_: list | None = None
        self._means: np.ndarray | None = None
        self._variances: np.ndarray | None = None
        self._log_priors: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianNB":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        y = np.asarray(y)
        self.classes_ = sorted(set(y.tolist()))
        n_classes, n_features = len(self.classes_), X.shape[1]
        if n_classes < 2:
            raise ValueError("need at least two classes")
        self._means = np.zeros((n_classes, n_features))
        self._variances = np.zeros((n_classes, n_features))
        priors = np.zeros(n_classes)
        global_var = np.nanvar(X, axis=0)
        floor = self.var_smoothing * max(float(np.nanmax(global_var)), 1.0)
        for index, cls in enumerate(self.classes_):
            rows = X[y == cls]
            priors[index] = rows.shape[0] / X.shape[0]
            with np.errstate(invalid="ignore"):
                means = np.nanmean(rows, axis=0)
                variances = np.nanvar(rows, axis=0)
            means = np.where(np.isnan(means), np.nanmean(X, axis=0), means)
            variances = np.where(np.isnan(variances), global_var, variances)
            self._means[index] = means
            self._variances[index] = np.maximum(variances, floor)
        self._log_priors = np.log(priors)
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        assert self._means is not None and self._variances is not None
        assert self._log_priors is not None
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        scores = np.tile(self._log_priors, (X.shape[0], 1))
        for index in range(len(self.classes_)):
            diff = X - self._means[index]
            log_density = -0.5 * (
                np.log(2 * np.pi * self._variances[index]) + diff**2 / self._variances[index]
            )
            scores[:, index] += np.nansum(log_density, axis=1)
        return scores

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("fit must be called before predict")
        winners = np.argmax(self._joint_log_likelihood(X), axis=1)
        return np.asarray([self.classes_[i] for i in winners])

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Posterior class probabilities (softmax of joint log-likelihood)."""
        scores = self._joint_log_likelihood(X)
        scores -= scores.max(axis=1, keepdims=True)
        exponentials = np.exp(scores)
        return exponentials / exponentials.sum(axis=1, keepdims=True)
