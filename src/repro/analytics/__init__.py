"""Learning substrate: from-scratch classifiers, metrics, validation."""

from repro.analytics.calibration import (
    CalibrationReport,
    PlattScaler,
    brier_score,
    calibration_curve,
    calibration_report,
    expected_calibration_error,
)
from repro.analytics.decision_tree import DecisionTreeClassifier, TreeNode
from repro.analytics.logistic import KernelLogisticRegression
from repro.analytics.knn import KNNClassifier, nan_euclidean_distances
from repro.analytics.lssvm import LSSVC
from repro.analytics.metrics import (
    accuracy_score,
    confusion_matrix,
    error_rate,
    log_loss,
    macro_f1,
    precision_recall_f1,
)
from repro.analytics.naive_bayes import GaussianNB
from repro.analytics.svm import KernelSVC, OneVsRestSVC
from repro.analytics.validation import (
    cross_val_score,
    cross_val_score_precomputed,
    kfold_indices,
    stratified_kfold_indices,
    train_test_split,
)

__all__ = [
    "CalibrationReport",
    "PlattScaler",
    "brier_score",
    "calibration_curve",
    "calibration_report",
    "expected_calibration_error",
    "KernelLogisticRegression",
    "DecisionTreeClassifier",
    "TreeNode",
    "KNNClassifier",
    "nan_euclidean_distances",
    "LSSVC",
    "accuracy_score",
    "confusion_matrix",
    "error_rate",
    "log_loss",
    "macro_f1",
    "precision_recall_f1",
    "GaussianNB",
    "KernelSVC",
    "OneVsRestSVC",
    "cross_val_score",
    "cross_val_score_precomputed",
    "kfold_indices",
    "stratified_kfold_indices",
    "train_test_split",
]
