"""CART-style decision tree with explicit missing-value strategies.

Section IV.A of the paper contrasts two single-player strategies when a
dataset is "plagued by missing values" and the task is "learning a
decision tree out of the data": impute substitutes and accept the
inaccuracy, or learn one model per pattern of available features.  This
tree is the learner used by that experiment (P1).  Missing entries are
``numpy.nan``; at split time missing rows follow the majority branch,
which the node remembers for prediction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["DecisionTreeClassifier", "TreeNode"]


@dataclass
class TreeNode:
    """One tree node; leaves carry a label, internal nodes a split."""

    prediction: object = None
    feature: int | None = None
    threshold: float | None = None
    missing_goes_left: bool = True
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None
    n_samples: int = 0
    impurity: float = 0.0
    class_counts: dict = field(default_factory=dict)

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini(labels: np.ndarray) -> float:
    if labels.size == 0:
        return 0.0
    _, counts = np.unique(labels, return_counts=True)
    proportions = counts / labels.size
    return float(1.0 - np.sum(proportions**2))


def _majority(labels: np.ndarray):
    values, counts = np.unique(labels, return_counts=True)
    return values[np.argmax(counts)]


class DecisionTreeClassifier:
    """Binary-split CART classifier on numeric features with NaN support.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root = depth 0).
    min_samples_split:
        Minimum node size to attempt a split.
    min_impurity_decrease:
        Minimum Gini decrease for a split to be kept.
    """

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 2,
        min_impurity_decrease: float = 1e-7,
    ):
        if max_depth < 0:
            raise ValueError("max_depth must be non-negative")
        self.max_depth = int(max_depth)
        self.min_samples_split = int(min_samples_split)
        self.min_impurity_decrease = float(min_impurity_decrease)
        self.root: TreeNode | None = None
        self.n_features_: int | None = None

    # ------------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        y = np.asarray(y)
        if y.shape[0] != X.shape[0]:
            raise ValueError("X and y must have equal length")
        if y.shape[0] == 0:
            raise ValueError("cannot fit a tree on an empty dataset")
        self.n_features_ = X.shape[1]
        self.root = self._build(X, y, depth=0)
        return self

    def _best_split(self, X: np.ndarray, y: np.ndarray):
        parent_impurity = _gini(y)
        n = y.size
        best = None  # (gain, feature, threshold, missing_left)
        for feature in range(X.shape[1]):
            column = X[:, feature]
            present = ~np.isnan(column)
            if present.sum() < 2:
                continue
            values = np.unique(column[present])
            if values.size < 2:
                continue
            thresholds = (values[:-1] + values[1:]) / 2.0
            for threshold in thresholds:
                goes_left = column <= threshold
                for missing_left in (True, False) if (~present).any() else (True,):
                    left_mask = np.where(present, goes_left, missing_left)
                    left_count = int(left_mask.sum())
                    if left_count == 0 or left_count == n:
                        continue
                    weighted = (
                        left_count * _gini(y[left_mask])
                        + (n - left_count) * _gini(y[~left_mask])
                    ) / n
                    gain = parent_impurity - weighted
                    if best is None or gain > best[0] + 1e-12:
                        best = (gain, feature, float(threshold), missing_left)
        return best

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> TreeNode:
        values, counts = np.unique(y, return_counts=True)
        node = TreeNode(
            prediction=values[np.argmax(counts)],
            n_samples=int(y.size),
            impurity=_gini(y),
            class_counts={v: int(c) for v, c in zip(values.tolist(), counts.tolist())},
        )
        if (
            depth >= self.max_depth
            or y.size < self.min_samples_split
            or values.size == 1
        ):
            return node
        best = self._best_split(X, y)
        if best is None or best[0] < self.min_impurity_decrease:
            return node
        _, feature, threshold, missing_left = best
        column = X[:, feature]
        present = ~np.isnan(column)
        left_mask = np.where(present, column <= threshold, missing_left)
        node.feature = feature
        node.threshold = threshold
        node.missing_goes_left = missing_left
        node.left = self._build(X[left_mask], y[left_mask], depth + 1)
        node.right = self._build(X[~left_mask], y[~left_mask], depth + 1)
        return node

    # ------------------------------------------------------------------

    def _route(self, node: TreeNode, row: np.ndarray):
        while not node.is_leaf:
            value = row[node.feature]
            if np.isnan(value):
                node = node.left if node.missing_goes_left else node.right
            elif value <= node.threshold:
                node = node.left
            else:
                node = node.right
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.root is None:
            raise RuntimeError("fit must be called before predict")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {X.shape[1]}"
            )
        return np.asarray([self._route(self.root, row).prediction for row in X])

    def predict_proba(self, X: np.ndarray) -> list[dict]:
        """Per-sample class-frequency dicts from the reached leaf."""
        if self.root is None:
            raise RuntimeError("fit must be called before predict")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        results = []
        for row in X:
            leaf = self._route(self.root, row)
            total = sum(leaf.class_counts.values())
            results.append(
                {label: count / total for label, count in leaf.class_counts.items()}
            )
        return results

    def depth(self) -> int:
        """Actual depth of the fitted tree."""

        def walk(node: TreeNode | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self.root is None:
            raise RuntimeError("fit must be called first")
        return walk(self.root)

    def n_leaves(self) -> int:
        """Number of leaves of the fitted tree."""

        def walk(node: TreeNode) -> int:
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        if self.root is None:
            raise RuntimeError("fit must be called first")
        return walk(self.root)
