"""Kernel logistic regression — probabilistic scores for veracity reports.

Section IV of the paper: "A predictive model is useful, in practice, if
it provides also information on the veracity of its predictions because
the lack of veracity has a cost."  SVM margins are not probabilities;
kernel logistic regression is, so it feeds the calibration layer of
:mod:`repro.analytics.calibration` and the chain-of-trust reports.

Trained by iteratively reweighted least squares (Newton) on the
regularised dual parameterisation ``f = K a + b``; accepts a
:class:`repro.kernels.Kernel` or precomputed Grams like the other
kernel machines in this package.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import Kernel, as_2d

__all__ = ["KernelLogisticRegression"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    expz = np.exp(z[~positive])
    out[~positive] = expz / (1.0 + expz)
    return out


class KernelLogisticRegression:
    """Binary kernel logistic regression via IRLS.

    Parameters
    ----------
    kernel:
        A :class:`Kernel` or ``"precomputed"``.
    regularization:
        L2 penalty on the dual coefficients (in the RKHS norm sense,
        ``lambda * a' K a``).
    max_iterations / tolerance:
        Newton stopping controls.
    """

    def __init__(
        self,
        kernel: Kernel | str,
        regularization: float = 1e-2,
        max_iterations: int = 50,
        tolerance: float = 1e-8,
    ):
        if regularization <= 0:
            raise ValueError("regularization must be positive")
        self.kernel = kernel
        self.regularization = float(regularization)
        self.max_iterations = int(max_iterations)
        self.tolerance = float(tolerance)
        self._alpha: np.ndarray | None = None
        self._bias = 0.0
        self._train_X: np.ndarray | None = None
        self.classes_: tuple | None = None
        self.n_iterations_ = 0

    def _gram_train(self, X: np.ndarray) -> np.ndarray:
        if isinstance(self.kernel, str):
            if self.kernel != "precomputed":
                raise ValueError("kernel must be a Kernel or 'precomputed'")
            gram = np.asarray(X, dtype=float)
            if gram.shape[0] != gram.shape[1]:
                raise ValueError("precomputed training Gram must be square")
            return gram
        self._train_X = as_2d(X)
        return self.kernel(self._train_X)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KernelLogisticRegression":
        labels = np.asarray(y).ravel()
        classes = sorted(set(labels.tolist()))
        if len(classes) != 2:
            raise ValueError(f"binary model needs exactly 2 classes, got {classes!r}")
        self.classes_ = tuple(classes)
        targets = np.where(labels == classes[1], 1.0, 0.0)

        K = self._gram_train(X)
        n = K.shape[0]
        if targets.size != n:
            raise ValueError("label count must match sample count")
        alpha = np.zeros(n)
        bias = 0.0
        # Newton on the penalised log-likelihood; weights W = p(1-p).
        for iteration in range(self.max_iterations):
            scores = K @ alpha + bias
            probabilities = _sigmoid(scores)
            weights = np.clip(probabilities * (1 - probabilities), 1e-10, None)
            # Working response of IRLS.
            z = scores + (targets - probabilities) / weights
            # Solve (K + lambda W^-1) a = z - b, with the bias absorbed by
            # augmenting the system with a constant column.
            W_inv = 1.0 / weights
            system = np.zeros((n + 1, n + 1))
            system[:n, :n] = K + self.regularization * np.diag(W_inv)
            system[:n, n] = 1.0
            system[n, :n] = weights
            system[n, n] = weights.sum()
            rhs = np.concatenate([z, [float(weights @ z)]])
            try:
                solution = np.linalg.solve(system, rhs)
            except np.linalg.LinAlgError:
                solution, *_ = np.linalg.lstsq(system, rhs, rcond=None)
            new_alpha, new_bias = solution[:n], float(solution[n])
            shift = np.max(np.abs(new_alpha - alpha)) + abs(new_bias - bias)
            alpha, bias = new_alpha, new_bias
            self.n_iterations_ = iteration + 1
            if shift < self.tolerance:
                break
        self._alpha = alpha
        self._bias = bias
        return self

    def _scores(self, X: np.ndarray) -> np.ndarray:
        if self._alpha is None:
            raise RuntimeError("fit must be called before prediction")
        if isinstance(self.kernel, str):
            cross = np.asarray(X, dtype=float)
            if cross.shape[1] != self._alpha.size:
                raise ValueError(
                    "precomputed predict Gram must have one column per training sample"
                )
        else:
            cross = self.kernel(as_2d(X), self._train_X)
        return cross @ self._alpha + self._bias

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """(n, 2) class probabilities, columns ordered like ``classes_``."""
        positive = _sigmoid(self._scores(X))
        return np.column_stack([1.0 - positive, positive])

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Log-odds of the positive class."""
        return self._scores(X)

    def predict(self, X: np.ndarray) -> np.ndarray:
        scores = self._scores(X)
        assert self.classes_ is not None
        negative, positive = self.classes_
        return np.where(scores >= 0, positive, negative)
