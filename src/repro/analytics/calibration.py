"""Prediction-veracity diagnostics: calibration curves and ECE.

The paper's decision-maker needs to know how much a model's confidence
can be trusted (Sec. IV: "the lack of veracity has a cost"; Sec. I:
the user "is not informed that the analytics outcomes cannot be fully
trusted and, even if so, he does not understand why").  These are the
standard instruments: reliability (calibration) curves, expected and
maximum calibration error, Brier score, and Platt scaling to repair a
mis-calibrated score.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "CalibrationReport",
    "calibration_curve",
    "expected_calibration_error",
    "brier_score",
    "calibration_report",
    "PlattScaler",
]


def _validate(y_true: np.ndarray, probabilities: np.ndarray):
    y = np.asarray(y_true, dtype=float).ravel()
    p = np.asarray(probabilities, dtype=float).ravel()
    if y.shape != p.shape:
        raise ValueError("labels and probabilities must align")
    if y.size == 0:
        raise ValueError("need at least one sample")
    if set(np.unique(y)) <= {-1.0, 1.0}:
        y = (y + 1) / 2
    if not set(np.unique(y)) <= {0.0, 1.0}:
        raise ValueError("labels must be binary ({0,1} or {-1,+1})")
    if p.min() < -1e-9 or p.max() > 1 + 1e-9:
        raise ValueError("probabilities must lie in [0, 1]")
    return y, np.clip(p, 0.0, 1.0)


def calibration_curve(
    y_true: np.ndarray, probabilities: np.ndarray, n_bins: int = 10
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return (mean predicted, observed frequency, count) per bin.

    Empty bins are dropped.
    """
    if n_bins < 1:
        raise ValueError("n_bins must be positive")
    y, p = _validate(y_true, probabilities)
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    indices = np.clip(np.digitize(p, edges[1:-1]), 0, n_bins - 1)
    mean_predicted, observed, counts = [], [], []
    for b in range(n_bins):
        mask = indices == b
        if not mask.any():
            continue
        mean_predicted.append(float(p[mask].mean()))
        observed.append(float(y[mask].mean()))
        counts.append(int(mask.sum()))
    return (
        np.asarray(mean_predicted),
        np.asarray(observed),
        np.asarray(counts),
    )


def expected_calibration_error(
    y_true: np.ndarray, probabilities: np.ndarray, n_bins: int = 10
) -> float:
    """Count-weighted mean |confidence − accuracy| over bins (ECE)."""
    mean_predicted, observed, counts = calibration_curve(
        y_true, probabilities, n_bins
    )
    total = counts.sum()
    return float(np.sum(counts * np.abs(mean_predicted - observed)) / total)


def brier_score(y_true: np.ndarray, probabilities: np.ndarray) -> float:
    """Mean squared error of the probability forecast."""
    y, p = _validate(y_true, probabilities)
    return float(np.mean((p - y) ** 2))


@dataclass(frozen=True)
class CalibrationReport:
    """Veracity summary attached to trust reports."""

    ece: float
    mce: float
    brier: float
    n_bins_used: int
    mean_confidence: float
    accuracy_of_argmax: float

    @property
    def well_calibrated(self) -> bool:
        """Rule of thumb: ECE below 10%."""
        return self.ece < 0.10


def calibration_report(
    y_true: np.ndarray, probabilities: np.ndarray, n_bins: int = 10
) -> CalibrationReport:
    """Full veracity diagnostics of a probabilistic binary predictor."""
    y, p = _validate(y_true, probabilities)
    mean_predicted, observed, counts = calibration_curve(y, p, n_bins)
    gaps = np.abs(mean_predicted - observed)
    predictions = (p >= 0.5).astype(float)
    confidence = np.where(p >= 0.5, p, 1 - p)
    return CalibrationReport(
        ece=float(np.sum(counts * gaps) / counts.sum()),
        mce=float(gaps.max()),
        brier=brier_score(y, p),
        n_bins_used=int(len(counts)),
        mean_confidence=float(confidence.mean()),
        accuracy_of_argmax=float(np.mean(predictions == y)),
    )


class PlattScaler:
    """Platt scaling: fit ``sigma(a * score + b)`` to held-out labels.

    Turns raw margins (e.g. SVM decision values) into calibrated
    probabilities by one-dimensional logistic regression, fitted by
    Newton iterations.
    """

    def __init__(self, max_iterations: int = 100, tolerance: float = 1e-10):
        self.max_iterations = int(max_iterations)
        self.tolerance = float(tolerance)
        self.a_: float | None = None
        self.b_: float | None = None

    def fit(self, scores: np.ndarray, y_true: np.ndarray) -> "PlattScaler":
        y, _ = _validate(y_true, np.zeros_like(np.asarray(y_true, dtype=float)))
        s = np.asarray(scores, dtype=float).ravel()
        if s.shape != y.shape:
            raise ValueError("scores and labels must align")
        a, b = 1.0, 0.0
        for _ in range(self.max_iterations):
            z = a * s + b
            p = 1.0 / (1.0 + np.exp(-np.clip(z, -35, 35)))
            gradient = np.array(
                [np.sum((p - y) * s), np.sum(p - y)]
            )
            w = np.clip(p * (1 - p), 1e-10, None)
            hessian = np.array(
                [
                    [np.sum(w * s * s) + 1e-10, np.sum(w * s)],
                    [np.sum(w * s), np.sum(w) + 1e-10],
                ]
            )
            step = np.linalg.solve(hessian, gradient)
            a, b = a - step[0], b - step[1]
            if np.max(np.abs(step)) < self.tolerance:
                break
        self.a_, self.b_ = float(a), float(b)
        return self

    def transform(self, scores: np.ndarray) -> np.ndarray:
        if self.a_ is None or self.b_ is None:
            raise RuntimeError("fit must be called before transform")
        z = self.a_ * np.asarray(scores, dtype=float).ravel() + self.b_
        return 1.0 / (1.0 + np.exp(-np.clip(z, -35, 35)))

    def fit_transform(self, scores: np.ndarray, y_true: np.ndarray) -> np.ndarray:
        return self.fit(scores, y_true).transform(scores)
