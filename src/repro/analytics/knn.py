"""k-nearest-neighbour classifier, also the engine of kNN imputation."""

from __future__ import annotations

import numpy as np
from scipy.spatial.distance import cdist

__all__ = ["KNNClassifier", "nan_euclidean_distances"]


def nan_euclidean_distances(X: np.ndarray, Z: np.ndarray) -> np.ndarray:
    """Pairwise Euclidean distances ignoring NaN coordinates.

    Distances are rescaled by ``sqrt(n_features / n_observed)`` so rows
    with many missing entries are comparable to complete rows (the
    convention of standard kNN imputers).  Pairs with no commonly
    observed coordinate get ``inf``.
    """
    X = np.asarray(X, dtype=float)
    Z = np.asarray(Z, dtype=float)
    if X.ndim == 1:
        X = X.reshape(1, -1)
    if Z.ndim == 1:
        Z = Z.reshape(1, -1)
    n_features = X.shape[1]
    distances = np.empty((X.shape[0], Z.shape[0]))
    x_mask = ~np.isnan(X)
    z_mask = ~np.isnan(Z)
    x_filled = np.where(x_mask, X, 0.0)
    z_filled = np.where(z_mask, Z, 0.0)
    for i in range(X.shape[0]):
        common = x_mask[i][None, :] & z_mask
        observed = common.sum(axis=1)
        difference = (x_filled[i][None, :] - z_filled) * common
        squared = np.sum(difference**2, axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            scaled = squared * n_features / observed
        scaled[observed == 0] = np.inf
        distances[i] = np.sqrt(scaled)
    return distances


class KNNClassifier:
    """Majority-vote kNN with optional NaN-tolerant distances."""

    def __init__(self, k: int = 5, nan_aware: bool = False):
        if k < 1:
            raise ValueError("k must be positive")
        self.k = int(k)
        self.nan_aware = bool(nan_aware)
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNNClassifier":
        self._X = np.asarray(X, dtype=float)
        self._y = np.asarray(y)
        if self._X.shape[0] != self._y.shape[0]:
            raise ValueError("X and y must have equal length")
        if self._X.shape[0] < self.k:
            raise ValueError("k cannot exceed the number of training samples")
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._X is None or self._y is None:
            raise RuntimeError("fit must be called before predict")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        if self.nan_aware:
            distances = nan_euclidean_distances(X, self._X)
        else:
            distances = cdist(X, self._X)
        neighbour_indices = np.argsort(distances, axis=1)[:, : self.k]
        predictions = []
        for row in neighbour_indices:
            labels, counts = np.unique(self._y[row], return_counts=True)
            predictions.append(labels[np.argmax(counts)])
        return np.asarray(predictions)
