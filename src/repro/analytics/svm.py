"""Kernel support vector classifier trained with SMO (from scratch).

Binary soft-margin SVC solving the usual dual

    max  sum_i a_i - 1/2 sum_ij a_i a_j y_i y_j K_ij
    s.t. 0 <= a_i <= C,  sum_i a_i y_i = 0

by Platt's sequential minimal optimisation with the standard
second-choice heuristic.  Accepts either a :class:`repro.kernels.Kernel`
or a precomputed Gram matrix — the partition-lattice search precomputes
block Grams once and trains many configurations, so the precomputed path
is the hot one.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import Kernel, as_2d

__all__ = ["KernelSVC", "OneVsRestSVC"]


class KernelSVC:
    """Binary kernel SVM.

    Parameters
    ----------
    kernel:
        A :class:`Kernel` instance, or the string ``"precomputed"`` in
        which case ``fit``/``predict`` receive Gram matrices instead of
        raw features (rows of the predict Gram index test points,
        columns index training points).
    C:
        Soft-margin penalty.
    tolerance:
        KKT violation tolerance.
    max_passes:
        Number of consecutive no-progress sweeps before stopping.
    """

    def __init__(
        self,
        kernel: Kernel | str,
        C: float = 1.0,
        tolerance: float = 1e-3,
        max_passes: int = 5,
        max_iterations: int = 10_000,
        seed: int = 0,
    ):
        if C <= 0:
            raise ValueError("C must be positive")
        self.kernel = kernel
        self.C = float(C)
        self.tolerance = float(tolerance)
        self.max_passes = int(max_passes)
        self.max_iterations = int(max_iterations)
        self.seed = int(seed)
        self._alpha: np.ndarray | None = None
        self._bias = 0.0
        self._train_X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self.classes_: tuple | None = None

    # ------------------------------------------------------------------

    def _encode_labels(self, y: np.ndarray) -> np.ndarray:
        classes = sorted(set(np.asarray(y).ravel().tolist()))
        if len(classes) != 2:
            raise ValueError(f"binary SVC needs exactly 2 classes, got {classes!r}")
        self.classes_ = tuple(classes)
        return np.where(np.asarray(y).ravel() == classes[1], 1.0, -1.0)

    def _gram(self, X: np.ndarray, Z: np.ndarray | None = None) -> np.ndarray:
        if isinstance(self.kernel, str):
            if self.kernel != "precomputed":
                raise ValueError("kernel must be a Kernel or 'precomputed'")
            gram = np.asarray(X, dtype=float)
            return gram
        return self.kernel(X, Z)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KernelSVC":
        """Train on features (or a square Gram when precomputed)."""
        signs = self._encode_labels(y)
        if isinstance(self.kernel, str):
            gram = np.asarray(X, dtype=float)
            if gram.shape[0] != gram.shape[1]:
                raise ValueError("precomputed training Gram must be square")
        else:
            self._train_X = as_2d(X)
            gram = self.kernel(self._train_X)
        n = gram.shape[0]
        if signs.size != n:
            raise ValueError("label count must match sample count")

        rng = np.random.default_rng(self.seed)
        alpha = np.zeros(n)
        bias = 0.0
        # Cached decision errors E_i = f(x_i) - y_i.
        def decision(i: int) -> float:
            return float((alpha * signs) @ gram[:, i] + bias)

        passes = 0
        iterations = 0
        while passes < self.max_passes and iterations < self.max_iterations:
            changed = 0
            for i in range(n):
                error_i = decision(i) - signs[i]
                violates = (
                    (signs[i] * error_i < -self.tolerance and alpha[i] < self.C)
                    or (signs[i] * error_i > self.tolerance and alpha[i] > 0)
                )
                if not violates:
                    continue
                j = int(rng.integers(0, n - 1))
                if j >= i:
                    j += 1
                error_j = decision(j) - signs[j]
                alpha_i_old, alpha_j_old = alpha[i], alpha[j]
                if signs[i] != signs[j]:
                    low = max(0.0, alpha[j] - alpha[i])
                    high = min(self.C, self.C + alpha[j] - alpha[i])
                else:
                    low = max(0.0, alpha[i] + alpha[j] - self.C)
                    high = min(self.C, alpha[i] + alpha[j])
                if low >= high:
                    continue
                eta = 2.0 * gram[i, j] - gram[i, i] - gram[j, j]
                if eta >= 0:
                    continue
                alpha[j] -= signs[j] * (error_i - error_j) / eta
                alpha[j] = float(np.clip(alpha[j], low, high))
                if abs(alpha[j] - alpha_j_old) < 1e-7:
                    continue
                alpha[i] += signs[i] * signs[j] * (alpha_j_old - alpha[j])
                bias_i = (
                    bias
                    - error_i
                    - signs[i] * (alpha[i] - alpha_i_old) * gram[i, i]
                    - signs[j] * (alpha[j] - alpha_j_old) * gram[i, j]
                )
                bias_j = (
                    bias
                    - error_j
                    - signs[i] * (alpha[i] - alpha_i_old) * gram[i, j]
                    - signs[j] * (alpha[j] - alpha_j_old) * gram[j, j]
                )
                if 0 < alpha[i] < self.C:
                    bias = bias_i
                elif 0 < alpha[j] < self.C:
                    bias = bias_j
                else:
                    bias = (bias_i + bias_j) / 2.0
                changed += 1
                iterations += 1
            passes = passes + 1 if changed == 0 else 0
        self._alpha = alpha
        self._bias = bias
        self._y = signs
        return self

    # ------------------------------------------------------------------

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed margin of each sample (or Gram rows when precomputed)."""
        if self._alpha is None or self._y is None:
            raise RuntimeError("fit must be called before prediction")
        if isinstance(self.kernel, str):
            cross = np.asarray(X, dtype=float)
            if cross.shape[1] != self._alpha.size:
                raise ValueError(
                    "precomputed predict Gram must have one column per training sample"
                )
        else:
            cross = self.kernel(as_2d(X), self._train_X)
        return cross @ (self._alpha * self._y) + self._bias

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted labels in the original label alphabet."""
        scores = self.decision_function(X)
        assert self.classes_ is not None
        negative, positive = self.classes_
        return np.where(scores >= 0, positive, negative)

    @property
    def support_indices(self) -> np.ndarray:
        """Training indices with non-zero dual coefficients."""
        if self._alpha is None:
            raise RuntimeError("fit must be called first")
        return np.flatnonzero(self._alpha > 1e-8)


class OneVsRestSVC:
    """Multi-class wrapper training one binary SVC per class."""

    def __init__(self, make_svc):
        """``make_svc`` is a zero-argument factory of fresh KernelSVC."""
        self.make_svc = make_svc
        self._machines: list[tuple[object, KernelSVC]] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "OneVsRestSVC":
        labels = np.asarray(y).ravel()
        self._machines = []
        for cls in sorted(set(labels.tolist())):
            machine = self.make_svc()
            machine.fit(X, np.where(labels == cls, 1, -1))
            self._machines.append((cls, machine))
        if len(self._machines) < 2:
            raise ValueError("need at least two classes")
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self._machines:
            raise RuntimeError("fit must be called first")
        scores = np.column_stack(
            [machine.decision_function(X) for _, machine in self._machines]
        )
        winners = np.argmax(scores, axis=1)
        classes = [cls for cls, _ in self._machines]
        return np.asarray([classes[i] for i in winners])
