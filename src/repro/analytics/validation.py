"""Resampling utilities: splits, k-fold CV, cross-validated scoring.

The paper's kernel-selection loop "assesses results by cross-validation";
these are the (from-scratch) folds it uses.  Estimators follow the
minimal protocol ``fit(X, y) -> self`` / ``predict(X) -> labels``.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence

import numpy as np

from repro.analytics.metrics import accuracy_score

__all__ = [
    "train_test_split",
    "kfold_indices",
    "stratified_kfold_indices",
    "cross_val_score",
    "cross_val_score_precomputed",
]


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    test_fraction: float = 0.25,
    seed: int = 0,
    stratify: bool = False,
):
    """Return ``X_train, X_test, y_train, y_test`` with optional stratification."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    X = np.asarray(X)
    y = np.asarray(y)
    n = X.shape[0]
    rng = np.random.default_rng(seed)
    if stratify:
        test_indices: list[int] = []
        for label in np.unique(y):
            members = np.flatnonzero(y == label)
            rng.shuffle(members)
            take = max(1, int(round(members.size * test_fraction)))
            # Never strip a class entirely from the training side.
            take = min(take, members.size - 1) if members.size > 1 else 0
            test_indices.extend(members[:take].tolist())
        test_mask = np.zeros(n, dtype=bool)
        test_mask[test_indices] = True
        if not test_mask.any():
            raise ValueError(
                "stratified split impossible: too few samples per class"
            )
    else:
        order = rng.permutation(n)
        n_test = max(1, int(round(n * test_fraction)))
        test_mask = np.zeros(n, dtype=bool)
        test_mask[order[:n_test]] = True
    return X[~test_mask], X[test_mask], y[~test_mask], y[test_mask]


def kfold_indices(
    n_samples: int, n_folds: int = 5, seed: int = 0
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(train_indices, test_indices)`` for shuffled k-fold CV."""
    if n_folds < 2:
        raise ValueError("need at least 2 folds")
    if n_folds > n_samples:
        raise ValueError("more folds than samples")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n_samples)
    folds = np.array_split(order, n_folds)
    for index in range(n_folds):
        test = np.sort(folds[index])
        train = np.sort(np.concatenate([folds[j] for j in range(n_folds) if j != index]))
        yield train, test


def stratified_kfold_indices(
    y: Sequence, n_folds: int = 5, seed: int = 0
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield stratified k-fold splits preserving label proportions."""
    y = np.asarray(y)
    if n_folds < 2:
        raise ValueError("need at least 2 folds")
    rng = np.random.default_rng(seed)
    fold_members: list[list[int]] = [[] for _ in range(n_folds)]
    for label in np.unique(y):
        members = np.flatnonzero(y == label)
        rng.shuffle(members)
        for position, sample in enumerate(members):
            fold_members[position % n_folds].append(int(sample))
    for index in range(n_folds):
        test = np.sort(np.asarray(fold_members[index], dtype=int))
        train = np.sort(
            np.concatenate(
                [np.asarray(fold_members[j], dtype=int) for j in range(n_folds) if j != index]
            )
        )
        yield train, test


def cross_val_score(
    make_estimator: Callable[[], object],
    X: np.ndarray,
    y: np.ndarray,
    n_folds: int = 5,
    seed: int = 0,
    stratified: bool = True,
    scorer: Callable = accuracy_score,
) -> list[float]:
    """Fit a fresh estimator per fold and return per-fold scores."""
    X = np.asarray(X)
    y = np.asarray(y)
    if stratified:
        splits = stratified_kfold_indices(y, n_folds, seed)
    else:
        splits = kfold_indices(X.shape[0], n_folds, seed)
    scores = []
    for train, test in splits:
        estimator = make_estimator()
        estimator.fit(X[train], y[train])
        scores.append(float(scorer(y[test], estimator.predict(X[test]))))
    return scores


def cross_val_score_precomputed(
    make_estimator: Callable[[], object],
    gram: np.ndarray,
    y: np.ndarray,
    n_folds: int = 5,
    seed: int = 0,
    scorer: Callable = accuracy_score,
) -> list[float]:
    """Cross-validate an estimator that consumes precomputed Grams.

    ``gram`` is the full square Gram; each fold slices the training
    block ``gram[train][:, train]`` and the prediction block
    ``gram[test][:, train]``.  This is the hot path of the lattice
    search: Grams are computed once per partition, folds reuse them.
    """
    gram = np.asarray(gram, dtype=float)
    y = np.asarray(y)
    if gram.shape[0] != gram.shape[1]:
        raise ValueError("gram must be square")
    scores = []
    for train, test in stratified_kfold_indices(y, n_folds, seed):
        estimator = make_estimator()
        estimator.fit(gram[np.ix_(train, train)], y[train])
        predictions = estimator.predict(gram[np.ix_(test, train)])
        scores.append(float(scorer(y[test], predictions)))
    return scores
