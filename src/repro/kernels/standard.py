"""Standard parametric kernels (paper Sec. II.A).

Polynomial and radial-basis-function kernels are singled out by the
paper as "parametric templates whose parameters can be found by
optimization"; linear, Laplacian and sigmoid kernels complete the usual
toolbox.  All are numpy-vectorised.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial.distance import cdist

from repro.kernels.base import Kernel

__all__ = [
    "LinearKernel",
    "PolynomialKernel",
    "RBFKernel",
    "LaplacianKernel",
    "SigmoidKernel",
    "median_heuristic_gamma",
]


def median_heuristic_gamma(X: np.ndarray) -> float:
    """Return ``1 / (2 * median^2)`` of the pairwise distances of ``X``.

    The classic bandwidth heuristic for RBF kernels; falls back to 1.0
    for degenerate samples (fewer than two distinct points).
    """
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.shape[0] < 2:
        return 1.0
    distances = cdist(X, X)
    positive = distances[distances > 0]
    if positive.size == 0:
        return 1.0
    median = float(np.median(positive))
    return 1.0 / (2.0 * median * median)


class LinearKernel(Kernel):
    """``k(x, z) = x . z``"""

    def compute(self, X: np.ndarray, Z: np.ndarray) -> np.ndarray:
        return X @ Z.T


class PolynomialKernel(Kernel):
    """``k(x, z) = (gamma * x.z + coef0) ** degree``"""

    def __init__(self, degree: int = 2, gamma: float = 1.0, coef0: float = 1.0):
        if degree < 1:
            raise ValueError("degree must be at least 1")
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.degree = int(degree)
        self.gamma = float(gamma)
        self.coef0 = float(coef0)

    def compute(self, X: np.ndarray, Z: np.ndarray) -> np.ndarray:
        return (self.gamma * (X @ Z.T) + self.coef0) ** self.degree


class RBFKernel(Kernel):
    """``k(x, z) = exp(-gamma * ||x - z||^2)``

    With ``gamma=None`` the bandwidth is set per call by the median
    heuristic on the left operand.
    """

    def __init__(self, gamma: float | None = 1.0):
        if gamma is not None and gamma <= 0:
            raise ValueError("gamma must be positive")
        self.gamma = None if gamma is None else float(gamma)

    def compute(self, X: np.ndarray, Z: np.ndarray) -> np.ndarray:
        gamma = self.gamma if self.gamma is not None else median_heuristic_gamma(X)
        squared = cdist(X, Z, metric="sqeuclidean")
        return np.exp(-gamma * squared)

    def bind(self, X: np.ndarray) -> "RBFKernel":
        # Freeze the median-heuristic bandwidth against the reference
        # sample so row-strip cross-Grams match full-Gram rows exactly.
        if self.gamma is not None:
            return self
        return RBFKernel(median_heuristic_gamma(X))


class LaplacianKernel(Kernel):
    """``k(x, z) = exp(-gamma * ||x - z||_1)``"""

    def __init__(self, gamma: float = 1.0):
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.gamma = float(gamma)

    def compute(self, X: np.ndarray, Z: np.ndarray) -> np.ndarray:
        return np.exp(-self.gamma * cdist(X, Z, metric="cityblock"))


class SigmoidKernel(Kernel):
    """``k(x, z) = tanh(gamma * x.z + coef0)`` (not PSD in general)."""

    def __init__(self, gamma: float = 0.01, coef0: float = 0.0):
        self.gamma = float(gamma)
        self.coef0 = float(coef0)

    def compute(self, X: np.ndarray, Z: np.ndarray) -> np.ndarray:
        return np.tanh(self.gamma * (X @ Z.T) + self.coef0)
