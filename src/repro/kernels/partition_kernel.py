"""From feature partitions to multiple-kernel configurations.

The paper's central construction (Sec. III): "each choice of multiple
kernel configuration corresponds to picking a partition of the full set
of features and subsequently multiplying together all the elements
lying in the same partition block".  Concretely, a block ``B`` yields
the Hadamard product of the per-feature kernels of its members — for
RBF kernels that product *is* the RBF kernel on the subspace spanned by
``B``, since squared distances add across coordinates.

:class:`PartitionKernelBank` materialises the configuration: one kernel
per block, Gram caching, and a combined Gram with pluggable weights.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.combinatorics.partitions import SetPartition
from repro.kernels.base import Kernel
from repro.kernels.combination import combine_grams
from repro.kernels.standard import RBFKernel

__all__ = ["PartitionKernelBank", "default_block_kernel"]

BlockKernelFactory = Callable[[tuple[int, ...]], Kernel]


def default_block_kernel(columns: tuple[int, ...]) -> Kernel:
    """Median-heuristic RBF kernel on a feature block.

    Equivalent to multiplying per-feature RBF kernels of the block's
    members (the paper's in-block aggregation by multiplication).
    """
    return RBFKernel(gamma=None).restrict(columns)


class PartitionKernelBank:
    """One kernel per block of a feature partition.

    The partition's ground set must be integer column indices of the
    data matrix.  Use :meth:`from_named_features` when the ground set is
    feature names.

    >>> from repro.combinatorics import SetPartition
    >>> bank = PartitionKernelBank(SetPartition([(0, 1), (2,)]))
    >>> bank.n_kernels
    2
    """

    def __init__(
        self,
        partition: SetPartition,
        block_kernel: BlockKernelFactory = default_block_kernel,
    ):
        for block in partition.blocks:
            for column in block:
                if not isinstance(column, (int, np.integer)) or column < 0:
                    raise ValueError(
                        "partition ground set must be non-negative column indices;"
                        f" got {column!r}"
                    )
        self.partition = partition
        self.kernels: list[Kernel] = [
            block_kernel(tuple(int(c) for c in block)) for block in partition.blocks
        ]

    @classmethod
    def from_named_features(
        cls,
        partition: SetPartition,
        feature_names: Sequence[str],
        block_kernel: BlockKernelFactory = default_block_kernel,
    ) -> "PartitionKernelBank":
        """Build a bank from a partition of feature *names*."""
        index_of = {name: i for i, name in enumerate(feature_names)}
        missing = set(partition.ground_set) - set(index_of)
        if missing:
            raise ValueError(f"partition names not in feature list: {sorted(missing)}")
        relabeled = SetPartition(
            [tuple(index_of[name] for name in block) for block in partition.blocks]
        )
        return cls(relabeled, block_kernel)

    @property
    def n_kernels(self) -> int:
        return len(self.kernels)

    def grams(self, X: np.ndarray, Z: np.ndarray | None = None) -> list[np.ndarray]:
        """Per-block (cross-)Gram matrices."""
        return [kernel(X, Z) for kernel in self.kernels]

    def combined_gram(
        self,
        X: np.ndarray,
        Z: np.ndarray | None = None,
        weights: Sequence[float] | None = None,
        normalize: bool = True,
    ) -> np.ndarray:
        """Weighted sum of the per-block Grams (uniform by default)."""
        return combine_grams(self.grams(X, Z), weights, normalize=normalize)

    def __repr__(self) -> str:
        blocks = "/".join(
            "".join(str(c) for c in block) for block in self.partition.blocks
        )
        return f"PartitionKernelBank(blocks={blocks})"
