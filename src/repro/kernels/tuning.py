"""Kernel parameter optimisation.

The paper (Sec. II.A): polynomial and RBF kernels "provide parametric
templates whose parameters can be found by optimization.  Choosing a
kernel is itself a problem; one can explore the combinatorial space of
dimensions and assess results by cross-validation."  This module does
the parametric half: grid search over kernel hyper-parameters scored by
centred alignment (cheap) or cross-validated accuracy (faithful), on
full feature sets or on a single block.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.kernels.base import Kernel
from repro.kernels.gram import centered_alignment, normalize_gram, target_gram
from repro.kernels.standard import PolynomialKernel, RBFKernel, median_heuristic_gamma

__all__ = [
    "TuningResult",
    "tune_kernel",
    "tune_rbf",
    "tune_polynomial",
    "alignment_objective",
    "cv_objective",
]


@dataclass(frozen=True)
class TuningResult:
    """Outcome of a kernel grid search."""

    best_kernel: Kernel
    best_score: float
    trials: tuple[tuple[str, float], ...]  # (description, score)


def alignment_objective(gram: np.ndarray, y: np.ndarray) -> float:
    """Centred kernel-target alignment of a normalised Gram."""
    return centered_alignment(
        normalize_gram(gram), target_gram(np.asarray(y, dtype=float))
    )


def cv_objective(n_folds: int = 3, gamma: float = 10.0, seed: int = 0):
    """Cross-validated LS-SVM accuracy objective factory."""
    # Imported lazily: repro.analytics itself builds on repro.kernels.
    from repro.analytics.lssvm import LSSVC
    from repro.analytics.validation import cross_val_score_precomputed

    def objective(gram: np.ndarray, y: np.ndarray) -> float:
        scores = cross_val_score_precomputed(
            lambda: LSSVC("precomputed", gamma=gamma),
            normalize_gram(gram),
            y,
            n_folds=n_folds,
            seed=seed,
        )
        return float(np.mean(scores))

    return objective


def tune_kernel(
    candidates: Sequence[Kernel],
    X: np.ndarray,
    y: np.ndarray,
    objective: Callable[[np.ndarray, np.ndarray], float] = alignment_objective,
) -> TuningResult:
    """Score each candidate kernel and return the best."""
    candidates = list(candidates)
    if not candidates:
        raise ValueError("need at least one candidate kernel")
    trials = []
    best_kernel, best_score = None, -np.inf
    for kernel in candidates:
        score = float(objective(kernel(X), y))
        trials.append((repr(kernel), score))
        if score > best_score:
            best_kernel, best_score = kernel, score
    assert best_kernel is not None
    return TuningResult(
        best_kernel=best_kernel, best_score=best_score, trials=tuple(trials)
    )


def tune_rbf(
    X: np.ndarray,
    y: np.ndarray,
    gamma_factors: Sequence[float] = (0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0),
    objective: Callable[[np.ndarray, np.ndarray], float] = alignment_objective,
) -> TuningResult:
    """Grid-search the RBF bandwidth around the median heuristic."""
    base = median_heuristic_gamma(np.asarray(X, dtype=float))
    candidates = [RBFKernel(gamma=base * factor) for factor in gamma_factors]
    return tune_kernel(candidates, X, y, objective)


def tune_polynomial(
    X: np.ndarray,
    y: np.ndarray,
    degrees: Sequence[int] = (1, 2, 3, 4),
    coef0s: Sequence[float] = (0.0, 1.0),
    objective: Callable[[np.ndarray, np.ndarray], float] = alignment_objective,
) -> TuningResult:
    """Grid-search polynomial degree and offset."""
    X = np.asarray(X, dtype=float)
    scale = float(np.mean(np.sum(X**2, axis=1))) or 1.0
    candidates = [
        PolynomialKernel(degree=degree, gamma=1.0 / scale, coef0=coef0)
        for degree in degrees
        for coef0 in coef0s
    ]
    return tune_kernel(candidates, X, y, objective)
