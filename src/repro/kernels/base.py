"""Kernel interface.

Kernels map data into high-dimensional feature spaces implicitly via
Gram matrices (paper Sec. II.A).  A kernel here is a callable object:
``kernel(X)`` returns the square Gram matrix of a sample, and
``kernel(X, Z)`` the rectangular cross-Gram between two samples.  All
arrays are ``numpy`` 2-D ``(n_samples, n_features)``.

Kernels can be *restricted* to a feature subset with
:class:`SubsetKernel` — the building block of the paper's faceted
configurations, where each block of a feature partition gets its own
kernel.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence

import numpy as np

__all__ = ["Kernel", "SubsetKernel", "as_2d"]


def as_2d(X: np.ndarray) -> np.ndarray:
    """Validate and return data as a 2-D float array."""
    array = np.asarray(X, dtype=float)
    if array.ndim == 1:
        array = array.reshape(1, -1)
    if array.ndim != 2:
        raise ValueError(f"expected 2-D data, got shape {array.shape}")
    return array


class Kernel(abc.ABC):
    """A positive-semidefinite similarity function on feature vectors."""

    @abc.abstractmethod
    def compute(self, X: np.ndarray, Z: np.ndarray) -> np.ndarray:
        """Return the cross-Gram matrix ``K[i, j] = k(X[i], Z[j])``."""

    def __call__(self, X: np.ndarray, Z: np.ndarray | None = None) -> np.ndarray:
        X = as_2d(X)
        Z = X if Z is None else as_2d(Z)
        if X.shape[1] != Z.shape[1]:
            raise ValueError(
                f"feature dimensions differ: {X.shape[1]} vs {Z.shape[1]}"
            )
        gram = self.compute(X, Z)
        return np.asarray(gram, dtype=float)

    def restrict(self, columns: Sequence[int]) -> "SubsetKernel":
        """Return this kernel applied only to the given feature columns."""
        return SubsetKernel(self, columns)

    def bind(self, X: np.ndarray) -> "Kernel":
        """Resolve data-dependent parameters against a reference sample.

        A *bound* kernel must satisfy the row-consistency contract

            ``bound(X[rows], X) == bound(X)[rows]``

        so that a Gram matrix can be assembled strip-wise (cross-Grams
        of row subsets against the full sample) and still match the
        monolithic computation exactly — the invariant the sharded
        caches rely on.  Kernels with fixed parameters already satisfy
        it and return themselves; kernels that infer parameters per
        call (e.g. a median-heuristic bandwidth) must freeze them here
        against the full ``X``.
        """
        return self

    def __repr__(self) -> str:
        params = ", ".join(
            f"{name}={value!r}"
            for name, value in sorted(vars(self).items())
            if not name.startswith("_")
        )
        return f"{type(self).__name__}({params})"


class SubsetKernel(Kernel):
    """A kernel evaluated on a column subset of the input data.

    This realises the paper's faceted construction: the kernel for a
    block ``B`` of the feature partition sees only the columns in ``B``.
    """

    def __init__(self, base: Kernel, columns: Sequence[int]):
        columns = tuple(int(c) for c in columns)
        if not columns:
            raise ValueError("a subset kernel needs at least one column")
        if len(set(columns)) != len(columns):
            raise ValueError("duplicate columns in subset")
        if any(c < 0 for c in columns):
            raise ValueError("column indices must be non-negative")
        self.base = base
        self.columns = columns

    def compute(self, X: np.ndarray, Z: np.ndarray) -> np.ndarray:
        max_needed = max(self.columns)
        if X.shape[1] <= max_needed:
            raise ValueError(
                f"data has {X.shape[1]} columns, subset needs column {max_needed}"
            )
        return self.base.compute(X[:, self.columns], Z[:, self.columns])

    def bind(self, X: np.ndarray) -> "SubsetKernel":
        X = as_2d(X)
        return SubsetKernel(self.base.bind(X[:, self.columns]), self.columns)
