"""Kernel combination operators.

The paper (Sec. II.A, III): "kernels are built combining input features
by using basic operations such as the multiplication or exponentiation
and their linear combinations", and multiple-kernel methods "combine
them linearly or non-linearly to improve learning performance".  This
module implements weighted sums, products, and convex combinations of
kernels, plus the same operations directly on precomputed Gram
matrices (which the MKL search uses for speed).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.kernels.base import Kernel
from repro.kernels.gram import normalize_gram

__all__ = [
    "SumKernel",
    "ProductKernel",
    "combine_grams",
    "uniform_weights",
    "validate_weights",
]


def validate_weights(weights: Sequence[float], count: int) -> np.ndarray:
    """Validate and return non-negative weights as an array of ``count``."""
    array = np.asarray(weights, dtype=float).ravel()
    if array.size != count:
        raise ValueError(f"expected {count} weights, got {array.size}")
    if np.any(array < 0):
        raise ValueError("kernel weights must be non-negative")
    if array.sum() <= 0:
        raise ValueError("at least one kernel weight must be positive")
    return array


def uniform_weights(count: int) -> np.ndarray:
    """Return the uniform convex weights ``1/count``."""
    if count < 1:
        raise ValueError("count must be positive")
    return np.full(count, 1.0 / count)


class SumKernel(Kernel):
    """Weighted sum ``sum_m w_m K_m`` (PSD when operands are PSD)."""

    def __init__(self, kernels: Sequence[Kernel], weights: Sequence[float] | None = None):
        kernels = list(kernels)
        if not kernels:
            raise ValueError("need at least one kernel")
        self.kernels = kernels
        if weights is None:
            self.weights = uniform_weights(len(kernels))
        else:
            self.weights = validate_weights(weights, len(kernels))

    def compute(self, X: np.ndarray, Z: np.ndarray) -> np.ndarray:
        total = np.zeros((X.shape[0], Z.shape[0]))
        for weight, kernel in zip(self.weights, self.kernels):
            if weight > 0:
                total += weight * kernel.compute(X, Z)
        return total


class ProductKernel(Kernel):
    """Elementwise (Hadamard) product ``prod_m K_m``.

    The product of PSD kernels is PSD (Schur product theorem); this is
    the paper's "aggregating by multiplication" of the elements in one
    partition block.
    """

    def __init__(self, kernels: Sequence[Kernel]):
        kernels = list(kernels)
        if not kernels:
            raise ValueError("need at least one kernel")
        self.kernels = kernels

    def compute(self, X: np.ndarray, Z: np.ndarray) -> np.ndarray:
        product = np.ones((X.shape[0], Z.shape[0]))
        for kernel in self.kernels:
            product *= kernel.compute(X, Z)
        return product


def combine_grams(
    grams: Sequence[np.ndarray],
    weights: Sequence[float] | None = None,
    normalize: bool = False,
) -> np.ndarray:
    """Weighted sum of precomputed Gram matrices.

    ``normalize=True`` cosine-normalises each Gram before combining so
    blocks with different scales contribute comparably.
    """
    grams = [np.asarray(gram, dtype=float) for gram in grams]
    if not grams:
        raise ValueError("need at least one Gram matrix")
    shape = grams[0].shape
    if any(gram.shape != shape for gram in grams):
        raise ValueError("all Gram matrices must share a shape")
    if weights is None:
        weight_array = uniform_weights(len(grams))
    else:
        weight_array = validate_weights(weights, len(grams))
    total = np.zeros(shape)
    for weight, gram in zip(weight_array, grams):
        if weight > 0:
            total += weight * (normalize_gram(gram) if normalize else gram)
    return total
