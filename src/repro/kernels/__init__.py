"""Kernel substrate: standard kernels, Gram utilities, combinations,
and the partition -> kernel-bank construction of the paper's Sec. III."""

from repro.kernels.base import Kernel, SubsetKernel, as_2d
from repro.kernels.combination import (
    ProductKernel,
    SumKernel,
    combine_grams,
    uniform_weights,
    validate_weights,
)
from repro.kernels.gram import (
    alignment,
    alignment_from_stats,
    center_gram,
    centered_alignment,
    centered_target_gram,
    frobenius_inner,
    is_psd,
    normalize_gram,
    target_gram,
)
from repro.kernels.partition_kernel import PartitionKernelBank, default_block_kernel
from repro.kernels.tuning import (
    TuningResult,
    alignment_objective,
    cv_objective,
    tune_kernel,
    tune_polynomial,
    tune_rbf,
)
from repro.kernels.standard import (
    LaplacianKernel,
    LinearKernel,
    PolynomialKernel,
    RBFKernel,
    SigmoidKernel,
    median_heuristic_gamma,
)

__all__ = [
    "Kernel",
    "SubsetKernel",
    "as_2d",
    "ProductKernel",
    "SumKernel",
    "combine_grams",
    "uniform_weights",
    "validate_weights",
    "alignment",
    "alignment_from_stats",
    "center_gram",
    "centered_alignment",
    "centered_target_gram",
    "frobenius_inner",
    "is_psd",
    "normalize_gram",
    "target_gram",
    "PartitionKernelBank",
    "default_block_kernel",
    "LaplacianKernel",
    "LinearKernel",
    "PolynomialKernel",
    "RBFKernel",
    "SigmoidKernel",
    "median_heuristic_gamma",
    "TuningResult",
    "alignment_objective",
    "cv_objective",
    "tune_kernel",
    "tune_polynomial",
    "tune_rbf",
]
