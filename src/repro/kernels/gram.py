"""Gram-matrix utilities: centering, normalisation, alignment, PSD checks.

Kernel-target alignment (plain and the centred variant of Cortes,
Mohri & Rostamizadeh) is the cheap surrogate objective the multiple-
kernel search uses to weigh and score kernels without training a full
classifier at every lattice node.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "center_gram",
    "normalize_gram",
    "target_gram",
    "centered_target_gram",
    "alignment",
    "alignment_from_stats",
    "centered_alignment",
    "is_psd",
    "frobenius_inner",
]


def center_gram(gram: np.ndarray) -> np.ndarray:
    """Double-centre a Gram matrix: ``HKH`` with ``H = I - 11'/n``."""
    gram = np.asarray(gram, dtype=float)
    n = gram.shape[0]
    if gram.shape != (n, n):
        raise ValueError("centering requires a square Gram matrix")
    row_means = gram.mean(axis=1, keepdims=True)
    col_means = gram.mean(axis=0, keepdims=True)
    return gram - row_means - col_means + gram.mean()


def normalize_gram(gram: np.ndarray, epsilon: float = 1e-12) -> np.ndarray:
    """Cosine-normalise: ``K[i,j] / sqrt(K[i,i] * K[j,j])``."""
    gram = np.asarray(gram, dtype=float)
    diagonal = np.sqrt(np.clip(np.diag(gram), epsilon, None))
    return gram / np.outer(diagonal, diagonal)


def target_gram(y: np.ndarray) -> np.ndarray:
    """Ideal Gram ``y y^T`` for labels in {-1, +1}."""
    y = np.asarray(y, dtype=float).ravel()
    return np.outer(y, y)


def centered_target_gram(y: np.ndarray) -> np.ndarray:
    """Centred ideal Gram ``H (y y') H`` — the alignment reference.

    Every partition scored during one search is compared against this
    same matrix, so callers (scorers, stats caches) compute it once and
    reuse it rather than re-centring per evaluation.
    """
    return center_gram(target_gram(y))


def frobenius_inner(first: np.ndarray, second: np.ndarray) -> float:
    """Frobenius inner product ``<A, B>_F``."""
    return float(np.sum(np.asarray(first) * np.asarray(second)))


def alignment(gram: np.ndarray, target: np.ndarray, epsilon: float = 1e-12) -> float:
    """Kernel-target alignment ``<K, T> / (||K|| ||T||)`` in [-1, 1]."""
    inner = frobenius_inner(gram, target)
    norms = np.linalg.norm(gram) * np.linalg.norm(target)
    if norms < epsilon:
        return 0.0
    return inner / norms


def alignment_from_stats(
    inner: float, first_norm: float, second_norm: float, epsilon: float = 1e-12
) -> float:
    """Alignment from precomputed scalars ``<A, B>``, ``||A||``, ``||B||``.

    The closed form the incremental engine uses: same epsilon guard as
    :func:`alignment`, no matrix work.
    """
    norms = first_norm * second_norm
    if norms < epsilon:
        return 0.0
    return inner / norms


def centered_alignment(
    gram: np.ndarray, target: np.ndarray, epsilon: float = 1e-12
) -> float:
    """Centred alignment (Cortes et al.): alignment of ``HKH`` vs ``HTH``.

    Robust to unbalanced classes, which plain alignment is not.
    """
    return alignment(center_gram(gram), center_gram(target), epsilon)


def is_psd(gram: np.ndarray, tolerance: float = 1e-8) -> bool:
    """Return True if the symmetric part of ``gram`` is PSD up to tolerance."""
    gram = np.asarray(gram, dtype=float)
    symmetric = (gram + gram.T) / 2.0
    eigenvalues = np.linalg.eigvalsh(symmetric)
    return bool(eigenvalues.min() >= -tolerance * max(1.0, abs(eigenvalues.max())))
