"""Normal-form (matrix) games: zero-sum minimax, Nash, fictitious play.

Section II.B of the paper recalls zero-sum games ("the gain of one
player ... is equal to the loss of the other") as the GAN framing, and
Sec. IV argues the pipeline players are *not* zero-sum: "typically
driven by compatible objectives, however the optimization of one
player's objective prevents the optimization of the other player's".
Both cases are covered: zero-sum games solve exactly by linear
programming (scipy linprog); general-sum bimatrix games get pure Nash
enumeration, best-response dynamics, support enumeration for mixed
equilibria, and smoothed fictitious play.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

__all__ = [
    "ZeroSumSolution",
    "solve_zero_sum",
    "NormalFormGame",
    "fictitious_play",
]


@dataclass(frozen=True)
class ZeroSumSolution:
    """Minimax solution of a zero-sum matrix game."""

    value: float
    row_strategy: np.ndarray
    column_strategy: np.ndarray


def solve_zero_sum(payoff: np.ndarray) -> ZeroSumSolution:
    """Solve ``max_x min_y x' A y`` by LP (row player maximises).

    Uses the standard shift-and-normalise reduction: add a constant to
    make the matrix positive, minimise ``sum(u)`` s.t. ``A' u >= 1``.
    """
    A = np.asarray(payoff, dtype=float)
    if A.ndim != 2 or A.size == 0:
        raise ValueError("payoff must be a non-empty 2-D matrix")
    shift = float(A.min())
    shifted = A - shift + 1.0  # strictly positive
    n_rows, n_cols = shifted.shape

    # Row player: minimise 1'u subject to shifted' u >= 1, u >= 0.
    row_lp = linprog(
        c=np.ones(n_rows),
        A_ub=-shifted.T,
        b_ub=-np.ones(n_cols),
        bounds=[(0, None)] * n_rows,
        method="highs",
    )
    if not row_lp.success:
        raise RuntimeError(f"row LP failed: {row_lp.message}")
    game_value = 1.0 / row_lp.fun
    row_strategy = row_lp.x * game_value

    # Column player: maximise 1'v subject to shifted v <= 1, v >= 0.
    col_lp = linprog(
        c=-np.ones(n_cols),
        A_ub=shifted,
        b_ub=np.ones(n_rows),
        bounds=[(0, None)] * n_cols,
        method="highs",
    )
    if not col_lp.success:
        raise RuntimeError(f"column LP failed: {col_lp.message}")
    column_strategy = col_lp.x * game_value

    return ZeroSumSolution(
        value=float(game_value + shift - 1.0),
        row_strategy=row_strategy / row_strategy.sum(),
        column_strategy=column_strategy / column_strategy.sum(),
    )


class NormalFormGame:
    """Two-player general-sum game given by payoff matrices ``(A, B)``.

    ``A[i, j]`` is the row player's payoff and ``B[i, j]`` the column
    player's when row plays ``i`` and column plays ``j``.
    """

    def __init__(
        self,
        row_payoff: np.ndarray,
        column_payoff: np.ndarray,
        row_actions: list | None = None,
        column_actions: list | None = None,
    ):
        A = np.asarray(row_payoff, dtype=float)
        B = np.asarray(column_payoff, dtype=float)
        if A.shape != B.shape or A.ndim != 2 or A.size == 0:
            raise ValueError("payoff matrices must share a non-empty 2-D shape")
        self.A = A
        self.B = B
        self.row_actions = row_actions or list(range(A.shape[0]))
        self.column_actions = column_actions or list(range(A.shape[1]))
        if len(self.row_actions) != A.shape[0] or len(self.column_actions) != A.shape[1]:
            raise ValueError("action labels must match matrix shape")

    @classmethod
    def zero_sum(cls, payoff: np.ndarray, **kwargs) -> "NormalFormGame":
        payoff = np.asarray(payoff, dtype=float)
        return cls(payoff, -payoff, **kwargs)

    @property
    def is_zero_sum(self) -> bool:
        return bool(np.allclose(self.A + self.B, 0.0))

    # ------------------------------------------------------------------

    def best_response_row(self, column_action: int) -> int:
        """Row player's best pure response to a column action."""
        return int(np.argmax(self.A[:, column_action]))

    def best_response_column(self, row_action: int) -> int:
        """Column player's best pure response to a row action."""
        return int(np.argmax(self.B[row_action, :]))

    def is_pure_nash(self, row_action: int, column_action: int) -> bool:
        """Check the mutual-best-response condition."""
        row_ok = self.A[row_action, column_action] >= self.A[:, column_action].max() - 1e-12
        col_ok = self.B[row_action, column_action] >= self.B[row_action, :].max() - 1e-12
        return bool(row_ok and col_ok)

    def pure_nash_equilibria(self) -> list[tuple[int, int]]:
        """All pure-strategy Nash equilibria (index pairs)."""
        return [
            (i, j)
            for i in range(self.A.shape[0])
            for j in range(self.A.shape[1])
            if self.is_pure_nash(i, j)
        ]

    def social_optimum(self) -> tuple[int, int]:
        """Profile maximising total welfare ``A + B``."""
        welfare = self.A + self.B
        index = int(np.argmax(welfare))
        return np.unravel_index(index, welfare.shape)  # type: ignore[return-value]

    def price_of_anarchy(self) -> float:
        """Worst-equilibrium welfare ratio ``opt / worst_nash``.

        Uses pure equilibria; returns ``inf`` when an equilibrium has
        non-positive welfare or ``nan`` when no pure equilibrium exists.
        """
        equilibria = self.pure_nash_equilibria()
        if not equilibria:
            return float("nan")
        welfare = self.A + self.B
        optimum = float(welfare.max())
        worst = min(float(welfare[i, j]) for i, j in equilibria)
        if worst <= 0:
            return float("inf")
        return optimum / worst

    def stackelberg_row_leader(self) -> tuple[int, int, float]:
        """Row commits first; column best-responds.

        Returns (row_action, column_action, row_payoff); the paper's
        sequential reading of the preprocessing-then-analytics order.
        """
        best = None
        for i in range(self.A.shape[0]):
            j = self.best_response_column(i)
            candidate = (i, j, float(self.A[i, j]))
            if best is None or candidate[2] > best[2]:
                best = candidate
        assert best is not None
        return best

    # ------------------------------------------------------------------

    def support_enumeration(self, tolerance: float = 1e-9) -> list[tuple[np.ndarray, np.ndarray]]:
        """Mixed Nash equilibria by support enumeration (small games).

        Enumerates equal-size supports first (a la Nash's theorem for
        nondegenerate games), then unequal sizes, solving the
        indifference systems; intended for the small strategy spaces of
        pipeline games.
        """
        n_rows, n_cols = self.A.shape
        equilibria: list[tuple[np.ndarray, np.ndarray]] = []
        for row_support_size in range(1, n_rows + 1):
            for col_support_size in range(1, n_cols + 1):
                for row_support in itertools.combinations(range(n_rows), row_support_size):
                    for col_support in itertools.combinations(range(n_cols), col_support_size):
                        profile = self._solve_support(
                            list(row_support), list(col_support), tolerance
                        )
                        if profile is not None and not any(
                            np.allclose(profile[0], x) and np.allclose(profile[1], y)
                            for x, y in equilibria
                        ):
                            equilibria.append(profile)
        return equilibria

    def _solve_support(
        self, row_support: list[int], col_support: list[int], tolerance: float
    ) -> tuple[np.ndarray, np.ndarray] | None:
        n_rows, n_cols = self.A.shape
        # Column mixing y must make supported rows indifferent (payoff A).
        y = self._indifference_mix(
            self.A[np.ix_(row_support, col_support)], len(col_support), tolerance
        )
        # Row mixing x must make supported columns indifferent (payoff B).
        x = self._indifference_mix(
            self.B[np.ix_(row_support, col_support)].T, len(row_support), tolerance
        )
        if x is None or y is None:
            return None
        full_x = np.zeros(n_rows)
        full_y = np.zeros(n_cols)
        full_x[row_support] = x
        full_y[col_support] = y
        # Verify no profitable deviation outside the supports.
        row_values = self.A @ full_y
        col_values = full_x @ self.B
        if row_values.max() > row_values[row_support].min() + 1e-7:
            return None
        if col_values.max() > col_values[col_support].min() + 1e-7:
            return None
        return full_x, full_y

    @staticmethod
    def _indifference_mix(
        payoffs: np.ndarray, size: int, tolerance: float
    ) -> np.ndarray | None:
        """Solve for a mix over ``size`` columns equalising row payoffs."""
        n_rows = payoffs.shape[0]
        system = np.zeros((n_rows + 1, size + 1))
        # payoffs @ mix - v = 0 for each supported row; sum(mix) = 1.
        system[:n_rows, :size] = payoffs
        system[:n_rows, size] = -1.0
        system[n_rows, :size] = 1.0
        rhs = np.zeros(n_rows + 1)
        rhs[n_rows] = 1.0
        solution, residual, *_ = np.linalg.lstsq(system, rhs, rcond=None)
        if np.linalg.norm(system @ solution - rhs) > 1e-7:
            return None
        mix = solution[:size]
        if np.any(mix < -tolerance):
            return None
        mix = np.clip(mix, 0.0, None)
        total = mix.sum()
        if total <= 0:
            return None
        return mix / total


def fictitious_play(
    game: NormalFormGame, n_rounds: int = 1000, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Empirical mixed strategies after fictitious-play learning.

    Each round both players best-respond to the opponent's empirical
    action frequencies.  Converges to Nash in zero-sum and potential
    games; returns the final empirical frequency vectors.
    """
    if n_rounds < 1:
        raise ValueError("n_rounds must be positive")
    rng = np.random.default_rng(seed)
    n_rows, n_cols = game.A.shape
    row_counts = np.zeros(n_rows)
    col_counts = np.zeros(n_cols)
    row_counts[rng.integers(n_rows)] = 1
    col_counts[rng.integers(n_cols)] = 1
    for _ in range(n_rounds):
        col_frequency = col_counts / col_counts.sum()
        row_frequency = row_counts / row_counts.sum()
        row_move = int(np.argmax(game.A @ col_frequency))
        col_move = int(np.argmax(row_frequency @ game.B))
        row_counts[row_move] += 1
        col_counts[col_move] += 1
    return row_counts / row_counts.sum(), col_counts / col_counts.sum()
