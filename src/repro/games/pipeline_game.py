"""The preprocessing-vs-analytics game, built by simulation.

Section IV of the paper casts the pipeline phases as players "driven by
compatible objectives" whose individual optimisations conflict: the
preprocessing player pays for data-repair effort that mostly benefits
the analytics player; the analytics player pays for model complexity
that can compensate for sloppy preprocessing.  This module constructs
the actual payoff matrices by *running* the pipeline on a workload —
every cell of the game is a measured (accuracy, cost) outcome — and
then analyses the resulting :class:`NormalFormGame`:

* the **single-player** setting (Sec. IV.A): one controller optimises
  the sum of both utilities (or a multi-objective trade-off);
* the **many-player** setting (Sec. IV.B): pure Nash equilibria,
  Stackelberg (preprocessing commits first — the natural pipeline
  order), and the price of anarchy against the social optimum.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.analytics.decision_tree import DecisionTreeClassifier
from repro.analytics.metrics import accuracy_score
from repro.analytics.naive_bayes import GaussianNB
from repro.games.multiobjective import ParetoPoint, pareto_front
from repro.games.normal_form import NormalFormGame
from repro.pipeline.imputation import (
    KNNImputer,
    MeanImputer,
    MedianImputer,
    PerPatternModel,
)

__all__ = [
    "PrepStrategy",
    "AnalystStrategy",
    "default_prep_strategies",
    "default_analyst_strategies",
    "PipelineGameResult",
    "build_pipeline_game",
    "single_player_optimum",
    "pareto_tradeoff",
    "build_bayesian_pipeline_game",
]


@dataclass(frozen=True)
class PrepStrategy:
    """A preprocessing option: how to treat missing data, at what cost."""

    name: str
    cost: float
    make_imputer: Callable[[], object] | None  # None = leave NaNs in place


@dataclass(frozen=True)
class AnalystStrategy:
    """An analytics option: which model to train, at what cost."""

    name: str
    cost: float
    make_model: Callable[[], object]


def default_prep_strategies() -> list[PrepStrategy]:
    """No-impute, mean, median, kNN — effort-ordered."""
    return [
        PrepStrategy("no_impute", 0.0, None),
        PrepStrategy("mean", 0.5, MeanImputer),
        PrepStrategy("median", 0.6, MedianImputer),
        PrepStrategy("knn", 2.0, lambda: KNNImputer(k=5)),
    ]


def default_analyst_strategies() -> list[AnalystStrategy]:
    """Shallow tree, deep tree, NaN-tolerant NB, per-pattern trees."""
    return [
        AnalystStrategy(
            "tree_shallow", 0.3, lambda: DecisionTreeClassifier(max_depth=3)
        ),
        AnalystStrategy(
            "tree_deep", 1.0, lambda: DecisionTreeClassifier(max_depth=10)
        ),
        AnalystStrategy("naive_bayes", 0.2, GaussianNB),
        AnalystStrategy(
            "per_pattern_trees",
            2.5,
            lambda: PerPatternModel(lambda: DecisionTreeClassifier(max_depth=5)),
        ),
    ]


@dataclass
class PipelineGameResult:
    """Payoffs, measured accuracies, and the solved game."""

    game: NormalFormGame
    accuracy: np.ndarray
    prep_strategies: list[PrepStrategy]
    analyst_strategies: list[AnalystStrategy]
    accuracy_weight_prep: float
    accuracy_weight_analyst: float
    details: dict = field(default_factory=dict)

    def nash_profiles(self) -> list[tuple[str, str]]:
        """Names of the pure Nash strategy pairs."""
        return [
            (self.prep_strategies[i].name, self.analyst_strategies[j].name)
            for i, j in self.game.pure_nash_equilibria()
        ]

    def social_profile(self) -> tuple[str, str]:
        i, j = self.game.social_optimum()
        return self.prep_strategies[i].name, self.analyst_strategies[j].name

    def stackelberg_profile(self) -> tuple[str, str]:
        i, j, _ = self.game.stackelberg_row_leader()
        return self.prep_strategies[i].name, self.analyst_strategies[j].name


def _evaluate_cell(
    prep: PrepStrategy,
    analyst: AnalystStrategy,
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_test: np.ndarray,
    y_test: np.ndarray,
) -> float:
    """Measured test accuracy of one (prep, analyst) profile."""
    if prep.make_imputer is None:
        train, test = X_train, X_test
    else:
        imputer = prep.make_imputer()
        imputer.fit(X_train)
        train = imputer.transform(X_train)
        test = imputer.transform(X_test)
    model = analyst.make_model()
    model.fit(train, y_train)
    return accuracy_score(y_test, model.predict(test))


def build_pipeline_game(
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_test: np.ndarray,
    y_test: np.ndarray,
    prep_strategies: Sequence[PrepStrategy] | None = None,
    analyst_strategies: Sequence[AnalystStrategy] | None = None,
    accuracy_weight_prep: float = 2.0,
    accuracy_weight_analyst: float = 10.0,
) -> PipelineGameResult:
    """Measure every strategy profile and assemble the bimatrix game.

    Utilities (the paper's "compatible but non-aligned" shape):

    * preprocessor: ``accuracy_weight_prep * accuracy - prep.cost`` —
      it shares the mission's success but pays its own effort;
    * analyst: ``accuracy_weight_analyst * accuracy - analyst.cost``.

    Accuracy matters to both (compatible objectives) with different
    stakes, while each player's cost is private — exactly the contrast
    of Sec. IV.
    """
    preps = list(prep_strategies or default_prep_strategies())
    analysts = list(analyst_strategies or default_analyst_strategies())
    accuracy = np.zeros((len(preps), len(analysts)))
    for i, prep in enumerate(preps):
        for j, analyst in enumerate(analysts):
            accuracy[i, j] = _evaluate_cell(
                prep, analyst, X_train, y_train, X_test, y_test
            )
    prep_costs = np.asarray([prep.cost for prep in preps])
    analyst_costs = np.asarray([analyst.cost for analyst in analysts])
    A = accuracy_weight_prep * accuracy - prep_costs[:, None]
    B = accuracy_weight_analyst * accuracy - analyst_costs[None, :]
    game = NormalFormGame(
        A,
        B,
        row_actions=[prep.name for prep in preps],
        column_actions=[analyst.name for analyst in analysts],
    )
    return PipelineGameResult(
        game=game,
        accuracy=accuracy,
        prep_strategies=preps,
        analyst_strategies=analysts,
        accuracy_weight_prep=accuracy_weight_prep,
        accuracy_weight_analyst=accuracy_weight_analyst,
    )


def single_player_optimum(
    result: PipelineGameResult,
) -> tuple[str, str, float]:
    """The Sec. IV.A single controller: maximise total welfare.

    Returns (prep_name, analyst_name, welfare).
    """
    welfare = result.game.A + result.game.B
    i, j = np.unravel_index(int(np.argmax(welfare)), welfare.shape)
    return (
        result.prep_strategies[i].name,
        result.analyst_strategies[j].name,
        float(welfare[i, j]),
    )


def build_bayesian_pipeline_game(
    result: PipelineGameResult,
    type_cost_scale: dict[str, float],
    priors: dict[str, float],
):
    """Lift a measured pipeline game to unknown analyst types.

    Sec. IV.B: the preprocessing player decides "based on a partial
    knowledge of the other players".  Here the analyst's *cost
    sensitivity* is private: a type with scale ``s`` perceives utility
    ``accuracy_weight * accuracy - s * cost``.  The measured accuracy
    matrix is reused; only the analyst's utilities vary by type.

    Returns ``(BayesianGame, normal_form, plans)`` ready for analysis.
    """
    from repro.games.bayesian import BayesianGame, harsanyi_transform

    if set(type_cost_scale) != set(priors):
        raise ValueError("type names must match between scales and priors")
    analyst_costs = np.asarray(
        [analyst.cost for analyst in result.analyst_strategies]
    )
    prep_costs = np.asarray([prep.cost for prep in result.prep_strategies])
    row_payoffs = {}
    column_payoffs = {}
    A = (
        result.accuracy_weight_prep * result.accuracy
        - prep_costs[:, None]
    )
    for type_name, scale in type_cost_scale.items():
        row_payoffs[type_name] = A
        column_payoffs[type_name] = (
            result.accuracy_weight_analyst * result.accuracy
            - scale * analyst_costs[None, :]
        )
    game = BayesianGame(
        row_payoffs=row_payoffs,
        column_payoffs=column_payoffs,
        priors=priors,
        row_actions=[prep.name for prep in result.prep_strategies],
        column_actions=[analyst.name for analyst in result.analyst_strategies],
    )
    normal, plans = harsanyi_transform(game)
    return game, normal, plans


def pareto_tradeoff(result: PipelineGameResult) -> list[ParetoPoint]:
    """Accuracy-vs-total-cost Pareto front over all profiles.

    Objectives are (accuracy, -total_cost), both maximised — the
    multi-objective reading of the single-player setting.
    """
    points = []
    for i, prep in enumerate(result.prep_strategies):
        for j, analyst in enumerate(result.analyst_strategies):
            points.append(
                ParetoPoint(
                    objectives=(
                        float(result.accuracy[i, j]),
                        -(prep.cost + analyst.cost),
                    ),
                    payload=(prep.name, analyst.name),
                )
            )
    return pareto_front(points)
