"""Game-theoretic substrate for adversarial pipeline modelling (Sec. IV)."""

from repro.games.bayesian import BayesianGame, harsanyi_transform
from repro.games.multiobjective import (
    ParetoPoint,
    epsilon_constraint_best,
    knee_point,
    pareto_front,
    weighted_sum_best,
)
from repro.games.normal_form import (
    NormalFormGame,
    ZeroSumSolution,
    fictitious_play,
    solve_zero_sum,
)
from repro.games.pipeline_game import (
    AnalystStrategy,
    PipelineGameResult,
    PrepStrategy,
    build_bayesian_pipeline_game,
    build_pipeline_game,
    default_analyst_strategies,
    default_prep_strategies,
    pareto_tradeoff,
    single_player_optimum,
)
from repro.games.sequential import (
    Chance,
    Decision,
    Leaf,
    SequentialGame,
    backward_induction,
)

__all__ = [
    "BayesianGame",
    "harsanyi_transform",
    "ParetoPoint",
    "epsilon_constraint_best",
    "knee_point",
    "pareto_front",
    "weighted_sum_best",
    "NormalFormGame",
    "ZeroSumSolution",
    "fictitious_play",
    "solve_zero_sum",
    "AnalystStrategy",
    "PipelineGameResult",
    "PrepStrategy",
    "build_bayesian_pipeline_game",
    "build_pipeline_game",
    "default_analyst_strategies",
    "default_prep_strategies",
    "pareto_tradeoff",
    "single_player_optimum",
    "Chance",
    "Decision",
    "Leaf",
    "SequentialGame",
    "backward_induction",
]
