"""Multi-objective optimisation: Pareto fronts and scalarisation.

The paper's decision rule for pipeline design (Sec. I.B): "if the
interests of preprocessing and analytics are aligned, one can resort to
optimization; if they are partially unaligned, one can resort to
multi-objective optimization; if the agents are also different ...
game theory."  This module supplies the middle regime, used by the
single-player imputation trade-off of Sec. IV.A (accuracy vs. model
count): Pareto filtering, weighted-sum scalarisation, epsilon-
constraint selection, and knee-point picking.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

__all__ = [
    "ParetoPoint",
    "pareto_front",
    "weighted_sum_best",
    "epsilon_constraint_best",
    "knee_point",
]


@dataclass(frozen=True)
class ParetoPoint:
    """A candidate with its objective vector (all maximised) and payload."""

    objectives: tuple[float, ...]
    payload: object = None


def _dominates(first: Sequence[float], second: Sequence[float]) -> bool:
    """True if ``first`` weakly dominates ``second`` with a strict gain."""
    at_least = all(f >= s for f, s in zip(first, second))
    strictly = any(f > s for f, s in zip(first, second))
    return at_least and strictly


def pareto_front(points: Sequence[ParetoPoint]) -> list[ParetoPoint]:
    """Return the non-dominated subset (all objectives maximised)."""
    points = list(points)
    if not points:
        return []
    width = len(points[0].objectives)
    if any(len(point.objectives) != width for point in points):
        raise ValueError("all points must share the objective dimension")
    front = []
    for candidate in points:
        if not any(
            _dominates(other.objectives, candidate.objectives)
            for other in points
            if other is not candidate
        ):
            front.append(candidate)
    return front


def weighted_sum_best(
    points: Sequence[ParetoPoint], weights: Sequence[float]
) -> ParetoPoint:
    """Maximise a convex combination of the objectives."""
    points = list(points)
    if not points:
        raise ValueError("need at least one point")
    weight_array = np.asarray(weights, dtype=float)
    if weight_array.size != len(points[0].objectives):
        raise ValueError("weight count must match objective count")
    if np.any(weight_array < 0):
        raise ValueError("weights must be non-negative")
    scores = [float(weight_array @ np.asarray(p.objectives)) for p in points]
    return points[int(np.argmax(scores))]


def epsilon_constraint_best(
    points: Sequence[ParetoPoint],
    optimise_index: int,
    floors: dict[int, float],
) -> ParetoPoint | None:
    """Maximise one objective subject to floors on the others.

    Returns None when no point satisfies the constraints.
    """
    feasible = [
        point
        for point in points
        if all(point.objectives[index] >= floor for index, floor in floors.items())
    ]
    if not feasible:
        return None
    return max(feasible, key=lambda point: point.objectives[optimise_index])


def knee_point(points: Sequence[ParetoPoint]) -> ParetoPoint:
    """Pick the Pareto point farthest from the extreme-point chord.

    Classic knee heuristic in two objectives: normalise the front,
    draw the line between the two single-objective optima, return the
    point with the maximum perpendicular distance.  Degenerates to the
    single point or the weighted-sum best for tiny fronts.
    """
    front = pareto_front(points)
    if not front:
        raise ValueError("need at least one point")
    if len(front) <= 2:
        return weighted_sum_best(front, [1.0] * len(front[0].objectives))
    if len(front[0].objectives) != 2:
        raise ValueError("knee_point supports exactly two objectives")
    values = np.asarray([point.objectives for point in front], dtype=float)
    spans = values.max(axis=0) - values.min(axis=0)
    spans[spans <= 0] = 1.0
    normalised = (values - values.min(axis=0)) / spans
    first_extreme = normalised[np.argmax(normalised[:, 0])]
    second_extreme = normalised[np.argmax(normalised[:, 1])]
    chord = second_extreme - first_extreme
    norm = np.linalg.norm(chord)
    if norm <= 0:
        return front[0]
    direction = chord / norm
    offsets = normalised - first_extreme
    # 2-D cross product magnitude = perpendicular distance to the chord.
    distances = np.abs(direction[0] * offsets[:, 1] - direction[1] * offsets[:, 0])
    return front[int(np.argmax(distances))]
