"""Extensive-form games with imperfect information.

The paper (Sec. IV.B): "A possible Game Theoretic frame for modeling
the process is the one of sequential games of imperfect information,
where a player needs to take decisions only based on a partial
knowledge of the other players decisions/strategies."

Games are trees of decision/chance nodes with payoffs at the leaves.
Decision nodes carry an *information set* label: nodes sharing a label
are indistinguishable to their player, so a pure strategy must pick the
same action at all of them.  Perfect-information games solve by
backward induction; imperfect-information games are converted to their
normal form over pure strategies (tractable for pipeline-sized games)
and solved with :mod:`repro.games.normal_form`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.games.normal_form import NormalFormGame

__all__ = ["Leaf", "Decision", "Chance", "SequentialGame", "backward_induction"]


@dataclass(frozen=True)
class Leaf:
    """Terminal node: payoff per player, e.g. ``{"prep": 1.0, "ml": 2.0}``."""

    payoffs: dict


@dataclass(frozen=True)
class Decision:
    """A choice node for one player; ``children`` maps action -> node.

    ``information_set`` defaults to a node-unique label (perfect
    information); share a label across nodes to model imperfect
    information.
    """

    player: str
    children: dict
    information_set: str | None = None

    def actions(self) -> tuple:
        return tuple(self.children)


@dataclass(frozen=True)
class Chance:
    """A chance node; ``branches`` maps outcome -> (probability, node)."""

    branches: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        total = sum(probability for probability, _ in self.branches.values())
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"chance probabilities sum to {total}, not 1")


Node = Leaf | Decision | Chance


def backward_induction(node: Node) -> tuple[dict, dict]:
    """Solve a *perfect information* game tree.

    Returns ``(payoffs, plan)`` where ``plan`` maps a node's position
    (path string) to the chosen action.  Raises if two decision nodes
    share an information set (imperfect information).
    """
    seen_sets: set[str] = set()

    def walk(current: Node, path: str) -> tuple[dict, dict]:
        if isinstance(current, Leaf):
            return dict(current.payoffs), {}
        if isinstance(current, Chance):
            expected: dict = {}
            plan: dict = {}
            for outcome, (probability, child) in current.branches.items():
                child_payoffs, child_plan = walk(child, f"{path}/{outcome}")
                plan.update(child_plan)
                for player, value in child_payoffs.items():
                    expected[player] = expected.get(player, 0.0) + probability * value
            return expected, plan
        label = current.information_set
        if label is not None:
            if label in seen_sets:
                raise ValueError(
                    "backward induction requires perfect information;"
                    f" information set {label!r} is shared"
                )
            seen_sets.add(label)
        best_action = None
        best_payoffs: dict = {}
        best_plan: dict = {}
        for action, child in current.children.items():
            child_payoffs, child_plan = walk(child, f"{path}/{action}")
            if (
                best_action is None
                or child_payoffs.get(current.player, 0.0)
                > best_payoffs.get(current.player, 0.0)
            ):
                best_action = action
                best_payoffs = child_payoffs
                best_plan = child_plan
        assert best_action is not None
        plan = {path or "root": best_action}
        plan.update(best_plan)
        return best_payoffs, plan

    return walk(node, "")


class SequentialGame:
    """A two-player extensive-form game, possibly of imperfect information."""

    def __init__(self, root: Node, players: tuple[str, str]):
        self.root = root
        self.players = players
        self._information_sets = self._collect_information_sets()

    def _collect_information_sets(self) -> dict[str, dict]:
        """Map information-set label -> {player, actions}."""
        sets: dict[str, dict] = {}

        def walk(node: Node) -> None:
            if isinstance(node, Leaf):
                return
            if isinstance(node, Chance):
                for _, child in node.branches.values():
                    walk(child)
                return
            label = node.information_set
            if label is None:
                raise ValueError(
                    "SequentialGame requires every decision node to carry an"
                    " information_set label (unique label = perfect information)"
                )
            if label in sets:
                if sets[label]["player"] != node.player:
                    raise ValueError(
                        f"information set {label!r} spans two players"
                    )
                if sets[label]["actions"] != node.actions():
                    raise ValueError(
                        f"information set {label!r} has inconsistent actions"
                    )
            else:
                sets[label] = {"player": node.player, "actions": node.actions()}
            for child in node.children.values():
                walk(child)

        walk(self.root)
        return sets

    def pure_strategies(self, player: str) -> list[dict]:
        """All pure strategies: one action per information set of the player."""
        own_sets = [
            (label, spec["actions"])
            for label, spec in self._information_sets.items()
            if spec["player"] == player
        ]
        if not own_sets:
            return [{}]
        labels = [label for label, _ in own_sets]
        choices = [actions for _, actions in own_sets]
        return [
            dict(zip(labels, combo)) for combo in itertools.product(*choices)
        ]

    def expected_payoffs(self, profile: dict[str, dict]) -> dict:
        """Expected payoffs under a pure-strategy profile.

        ``profile`` maps player -> {information_set: action}.
        """

        def walk(node: Node) -> dict:
            if isinstance(node, Leaf):
                return dict(node.payoffs)
            if isinstance(node, Chance):
                expected: dict = {}
                for probability, child in node.branches.values():
                    child_payoffs = walk(child)
                    for player, value in child_payoffs.items():
                        expected[player] = expected.get(player, 0.0) + probability * value
                return expected
            label = node.information_set
            if label is None:
                raise ValueError(
                    "decision nodes must carry information_set labels for"
                    " strategy evaluation"
                )
            action = profile[node.player][label]
            return walk(node.children[action])

        return walk(self.root)

    def to_normal_form(self) -> tuple[NormalFormGame, list[dict], list[dict]]:
        """Induced normal form over pure strategies of the two players."""
        first, second = self.players
        row_strategies = self.pure_strategies(first)
        col_strategies = self.pure_strategies(second)
        A = np.zeros((len(row_strategies), len(col_strategies)))
        B = np.zeros_like(A)
        for i, row_strategy in enumerate(row_strategies):
            for j, col_strategy in enumerate(col_strategies):
                payoffs = self.expected_payoffs(
                    {first: row_strategy, second: col_strategy}
                )
                A[i, j] = payoffs.get(first, 0.0)
                B[i, j] = payoffs.get(second, 0.0)
        game = NormalFormGame(
            A,
            B,
            row_actions=[str(sorted(s.items())) for s in row_strategies],
            column_actions=[str(sorted(s.items())) for s in col_strategies],
        )
        return game, row_strategies, col_strategies
