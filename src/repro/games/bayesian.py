"""Bayesian games: players with uncertain opponent types.

Section IV.B of the paper: players decide "only based on a partial
knowledge of the other players decisions/strategies" — in particular a
preprocessing operator rarely knows whether the downstream analyst is a
cheap or a thorough one.  A two-player Bayesian game captures this: the
column player has a private *type* drawn from a commonly known prior,
payoffs depend on the type, and the row player best-responds in
expectation.  Solved by Harsanyi transformation: expand the column
player's strategies to type-contingent plans and reduce to an ordinary
bimatrix game.
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.games.normal_form import NormalFormGame

__all__ = ["BayesianGame", "harsanyi_transform"]


@dataclass(frozen=True)
class BayesianGame:
    """Two players; the column player's type is private.

    ``row_payoffs[t]`` / ``column_payoffs[t]`` are the payoff matrices
    when the column player's type is ``t``; ``priors[t]`` is the common
    prior over types.
    """

    row_payoffs: Mapping[str, np.ndarray]
    column_payoffs: Mapping[str, np.ndarray]
    priors: Mapping[str, float]
    row_actions: Sequence[str] | None = None
    column_actions: Sequence[str] | None = None

    def __post_init__(self) -> None:
        if set(self.row_payoffs) != set(self.column_payoffs) or set(
            self.row_payoffs
        ) != set(self.priors):
            raise ValueError("types must agree across payoffs and priors")
        if not self.priors:
            raise ValueError("need at least one type")
        total = sum(self.priors.values())
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"priors sum to {total}, expected 1")
        shapes = {np.asarray(m).shape for m in self.row_payoffs.values()}
        shapes |= {np.asarray(m).shape for m in self.column_payoffs.values()}
        if len(shapes) != 1:
            raise ValueError("all type payoff matrices must share a shape")

    @property
    def types(self) -> list[str]:
        return sorted(self.priors)

    @property
    def shape(self) -> tuple[int, int]:
        any_matrix = next(iter(self.row_payoffs.values()))
        return np.asarray(any_matrix).shape  # type: ignore[return-value]


def harsanyi_transform(
    game: BayesianGame,
) -> tuple[NormalFormGame, list[dict[str, int]]]:
    """Reduce the Bayesian game to a bimatrix game.

    The column player's pure strategies become *type-contingent plans*
    (one action per type); the row player's payoff for (row action,
    plan) is the prior-weighted average over types, and the column
    player receives the same expectation of its own type payoffs.

    Returns the normal-form game and the list of plans (dicts mapping
    type -> column action index) in column order.
    """
    n_rows, n_cols = game.shape
    types = game.types
    plans = [
        dict(zip(types, combo))
        for combo in itertools.product(range(n_cols), repeat=len(types))
    ]
    A = np.zeros((n_rows, len(plans)))
    B = np.zeros_like(A)
    for plan_index, plan in enumerate(plans):
        for type_name in types:
            prior = game.priors[type_name]
            row_matrix = np.asarray(game.row_payoffs[type_name], dtype=float)
            col_matrix = np.asarray(game.column_payoffs[type_name], dtype=float)
            chosen = plan[type_name]
            A[:, plan_index] += prior * row_matrix[:, chosen]
            B[:, plan_index] += prior * col_matrix[:, chosen]
    row_actions = (
        list(game.row_actions)
        if game.row_actions is not None
        else list(range(n_rows))
    )
    column_labels = []
    for plan in plans:
        if game.column_actions is not None:
            pretty = {t: game.column_actions[i] for t, i in plan.items()}
        else:
            pretty = plan
        column_labels.append(str(sorted(pretty.items())))
    normal = NormalFormGame(A, B, row_actions=row_actions, column_actions=column_labels)
    return normal, plans
