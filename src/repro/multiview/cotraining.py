"""Co-training on two views (Blum & Mitchell style).

One of the three multi-view families the paper cites (Sec. I.A):
"co-training algorithms pursue agreement between models trained on
distinct views".  Two base learners are trained on their own views from
a small labelled pool; each round, every learner labels the unlabelled
examples it is most confident about and donates them to the shared
pool, until the pool is exhausted or the budget runs out.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.analytics.naive_bayes import GaussianNB

__all__ = ["CoTrainingClassifier"]


def _confidence(estimator, X: np.ndarray) -> np.ndarray:
    """Per-sample confidence in the predicted label."""
    if hasattr(estimator, "predict_proba"):
        probabilities = np.asarray(estimator.predict_proba(X), dtype=float)
        return probabilities.max(axis=1)
    if hasattr(estimator, "decision_function"):
        return np.abs(np.asarray(estimator.decision_function(X), dtype=float))
    raise TypeError("estimator must expose predict_proba or decision_function")


class CoTrainingClassifier:
    """Semi-supervised two-view classifier by iterated label exchange.

    Parameters
    ----------
    make_estimator:
        Factory of fresh per-view base learners (default GaussianNB).
    n_rounds:
        Maximum co-training rounds.
    per_round:
        Unlabelled examples each view promotes per round (per class,
        balanced: the most confident positive and negative).
    """

    def __init__(
        self,
        make_estimator: Callable[[], object] | None = None,
        n_rounds: int = 10,
        per_round: int = 2,
    ):
        if n_rounds < 1:
            raise ValueError("n_rounds must be positive")
        if per_round < 1:
            raise ValueError("per_round must be positive")
        self.make_estimator = make_estimator or (lambda: GaussianNB())
        self.n_rounds = int(n_rounds)
        self.per_round = int(per_round)
        self._models: list[object] = []
        self._view_slices: list[np.ndarray] | None = None
        self.rounds_run_: int = 0
        self.n_promoted_: int = 0

    def fit(
        self,
        view_a: np.ndarray,
        view_b: np.ndarray,
        y: np.ndarray,
        labeled_mask: np.ndarray,
    ) -> "CoTrainingClassifier":
        """Train from partially labelled data.

        ``y`` gives labels for rows where ``labeled_mask`` is True; the
        other entries are ignored (may be anything).
        """
        view_a = np.asarray(view_a, dtype=float)
        view_b = np.asarray(view_b, dtype=float)
        y = np.asarray(y)
        labeled_mask = np.asarray(labeled_mask, dtype=bool)
        if not (view_a.shape[0] == view_b.shape[0] == y.shape[0] == labeled_mask.shape[0]):
            raise ValueError("views, labels and mask must align")
        if labeled_mask.sum() < 2:
            raise ValueError("need at least two labelled examples")

        working_labels = y.copy()
        labeled = labeled_mask.copy()
        classes = sorted(set(y[labeled_mask].tolist()))
        if len(classes) != 2:
            raise ValueError("co-training here supports exactly two classes")

        views = [view_a, view_b]
        models = [self.make_estimator(), self.make_estimator()]
        self.rounds_run_ = 0
        self.n_promoted_ = 0
        for _ in range(self.n_rounds):
            unlabeled = np.flatnonzero(~labeled)
            if unlabeled.size == 0:
                break
            for model, view in zip(models, views):
                model.fit(view[labeled], working_labels[labeled])
            promoted_any = False
            for model, view in zip(models, views):
                predictions = model.predict(view[unlabeled])
                confidence = _confidence(model, view[unlabeled])
                for cls in classes:
                    members = np.flatnonzero(predictions == cls)
                    if members.size == 0:
                        continue
                    order = members[np.argsort(-confidence[members])]
                    for pick in order[: self.per_round]:
                        index = unlabeled[pick]
                        if labeled[index]:
                            continue
                        labeled[index] = True
                        working_labels[index] = cls
                        promoted_any = True
                        self.n_promoted_ += 1
                unlabeled = np.flatnonzero(~labeled)
                if unlabeled.size == 0:
                    break
            self.rounds_run_ += 1
            if not promoted_any:
                break
        for model, view in zip(models, views):
            model.fit(view[labeled], working_labels[labeled])
        self._models = models
        return self

    def predict(self, view_a: np.ndarray, view_b: np.ndarray) -> np.ndarray:
        """Combine the two view models (probability product when available)."""
        if not self._models:
            raise RuntimeError("fit must be called before predict")
        model_a, model_b = self._models
        if hasattr(model_a, "predict_proba") and hasattr(model_b, "predict_proba"):
            prob_a = np.asarray(model_a.predict_proba(np.asarray(view_a, dtype=float)))
            prob_b = np.asarray(model_b.predict_proba(np.asarray(view_b, dtype=float)))
            joint = prob_a * prob_b
            classes = model_a.classes_
            return np.asarray([classes[i] for i in np.argmax(joint, axis=1)])
        predictions_a = self._models[0].predict(view_a)
        predictions_b = self._models[1].predict(view_b)
        # Fall back to view A on disagreement.
        return np.where(predictions_a == predictions_b, predictions_a, predictions_a)

    def agreement(self, view_a: np.ndarray, view_b: np.ndarray) -> float:
        """Fraction of samples on which the two view models agree."""
        if not self._models:
            raise RuntimeError("fit must be called before predict")
        predictions_a = self._models[0].predict(view_a)
        predictions_b = self._models[1].predict(view_b)
        return float(np.mean(predictions_a == predictions_b))
