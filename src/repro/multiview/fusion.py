"""Late fusion of per-view classifiers.

The simplest multi-view baseline the paper's taxonomy implies: train
one classifier per facet and fuse their outputs — by majority vote,
validation-accuracy weighting, or probability product.  Serves as the
decision-level counterpart of kernel-level (MKL) fusion in the
benchmarks.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.analytics.metrics import accuracy_score
from repro.analytics.validation import train_test_split

__all__ = ["LateFusionClassifier"]


class LateFusionClassifier:
    """Per-view models + decision fusion.

    Parameters
    ----------
    view_columns:
        One column-index tuple per view.
    make_estimator:
        Factory of per-view base learners.
    rule:
        ``"majority"``, ``"weighted"`` (by per-view validation
        accuracy), or ``"product"`` (of predict_proba outputs; requires
        probabilistic base learners).
    """

    def __init__(
        self,
        view_columns: Sequence[Sequence[int]],
        make_estimator: Callable[[], object],
        rule: str = "weighted",
        validation_fraction: float = 0.25,
        seed: int = 0,
    ):
        if rule not in ("majority", "weighted", "product"):
            raise ValueError("rule must be 'majority', 'weighted' or 'product'")
        views = [tuple(int(c) for c in view) for view in view_columns]
        if not views or any(not view for view in views):
            raise ValueError("need at least one non-empty view")
        self.views = views
        self.make_estimator = make_estimator
        self.rule = rule
        self.validation_fraction = float(validation_fraction)
        self.seed = int(seed)
        self._models: list[object] = []
        self.view_weights_: np.ndarray | None = None
        self.classes_: list | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LateFusionClassifier":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        self.classes_ = sorted(set(y.tolist()))
        self._models = []
        weights = []
        for view in self.views:
            if self.rule == "weighted":
                X_fit, X_val, y_fit, y_val = train_test_split(
                    X[:, view], y, self.validation_fraction,
                    seed=self.seed, stratify=True,
                )
                model = self.make_estimator().fit(X_fit, y_fit)
                validation_accuracy = accuracy_score(y_val, model.predict(X_val))
                # Refit on everything now that the weight is known.
                model = self.make_estimator().fit(X[:, view], y)
                weights.append(max(validation_accuracy, 1e-6))
            else:
                model = self.make_estimator().fit(X[:, view], y)
                weights.append(1.0)
            self._models.append(model)
        weight_array = np.asarray(weights)
        self.view_weights_ = weight_array / weight_array.sum()
        return self

    def _votes(self, X: np.ndarray) -> np.ndarray:
        """(n_samples, n_views) matrix of per-view predicted labels."""
        X = np.asarray(X, dtype=float)
        return np.column_stack(
            [model.predict(X[:, view]) for model, view in zip(self._models, self.views)]
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self._models:
            raise RuntimeError("fit must be called before predict")
        assert self.classes_ is not None and self.view_weights_ is not None
        if self.rule == "product":
            X = np.asarray(X, dtype=float)
            joint = np.ones((X.shape[0], len(self.classes_)))
            for model, view in zip(self._models, self.views):
                if not hasattr(model, "predict_proba"):
                    raise TypeError("product rule requires predict_proba")
                probabilities = np.asarray(model.predict_proba(X[:, view]))
                joint *= np.clip(probabilities, 1e-12, None)
            winners = np.argmax(joint, axis=1)
            return np.asarray([self.classes_[i] for i in winners])
        votes = self._votes(X)
        predictions = []
        for row in votes:
            scores = {label: 0.0 for label in self.classes_}
            for weight, label in zip(self.view_weights_, row):
                scores[label] += float(weight)
            predictions.append(max(scores, key=scores.get))
        return np.asarray(predictions)

    def per_view_accuracy(self, X: np.ndarray, y: np.ndarray) -> dict[int, float]:
        """Accuracy of each view's model alone (diagnostics)."""
        if not self._models:
            raise RuntimeError("fit must be called before evaluation")
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        return {
            index: accuracy_score(y, model.predict(X[:, view]))
            for index, (model, view) in enumerate(zip(self._models, self.views))
        }
