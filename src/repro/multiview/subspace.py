"""Shared latent subspace learning via canonical correlation analysis.

The third multi-view family the paper cites (Sec. I.A): "subspace
learning algorithms try to identify a latent subspace shared by
multiple views by assuming that the input views are generated from
it".  CCA is implemented from scratch on scipy.linalg: regularised
whitening of each view followed by an SVD of the cross-covariance.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg

__all__ = ["CCA"]


class CCA:
    """Two-view canonical correlation analysis.

    Parameters
    ----------
    n_components:
        Dimension of the shared subspace.
    regularization:
        Ridge added to each view's covariance (helps when features
        outnumber samples, common for IoT bursts).
    """

    def __init__(self, n_components: int = 2, regularization: float = 1e-6):
        if n_components < 1:
            raise ValueError("n_components must be positive")
        if regularization < 0:
            raise ValueError("regularization must be non-negative")
        self.n_components = int(n_components)
        self.regularization = float(regularization)
        self.weights_a_: np.ndarray | None = None
        self.weights_b_: np.ndarray | None = None
        self.correlations_: np.ndarray | None = None
        self._mean_a: np.ndarray | None = None
        self._mean_b: np.ndarray | None = None

    @staticmethod
    def _inv_sqrt(matrix: np.ndarray) -> np.ndarray:
        eigenvalues, eigenvectors = linalg.eigh(matrix)
        eigenvalues = np.clip(eigenvalues, 1e-12, None)
        return eigenvectors @ np.diag(eigenvalues**-0.5) @ eigenvectors.T

    def fit(self, view_a: np.ndarray, view_b: np.ndarray) -> "CCA":
        A = np.asarray(view_a, dtype=float)
        B = np.asarray(view_b, dtype=float)
        if A.ndim != 2 or B.ndim != 2:
            raise ValueError("views must be 2-D")
        if A.shape[0] != B.shape[0]:
            raise ValueError("views must have the same number of rows")
        n = A.shape[0]
        if n < 2:
            raise ValueError("need at least two samples")
        limit = min(A.shape[1], B.shape[1])
        if self.n_components > limit:
            raise ValueError(
                f"n_components={self.n_components} exceeds min view width {limit}"
            )
        self._mean_a = A.mean(axis=0)
        self._mean_b = B.mean(axis=0)
        A = A - self._mean_a
        B = B - self._mean_b
        cov_aa = (A.T @ A) / (n - 1) + self.regularization * np.eye(A.shape[1])
        cov_bb = (B.T @ B) / (n - 1) + self.regularization * np.eye(B.shape[1])
        cov_ab = (A.T @ B) / (n - 1)
        whiten_a = self._inv_sqrt(cov_aa)
        whiten_b = self._inv_sqrt(cov_bb)
        core = whiten_a @ cov_ab @ whiten_b
        left, singular_values, right_t = linalg.svd(core, full_matrices=False)
        k = self.n_components
        self.weights_a_ = whiten_a @ left[:, :k]
        self.weights_b_ = whiten_b @ right_t[:k].T
        self.correlations_ = np.clip(singular_values[:k], 0.0, 1.0)
        return self

    def transform(
        self, view_a: np.ndarray | None = None, view_b: np.ndarray | None = None
    ) -> tuple[np.ndarray | None, np.ndarray | None]:
        """Project one or both views into the shared subspace."""
        if self.weights_a_ is None or self.weights_b_ is None:
            raise RuntimeError("fit must be called before transform")
        projected_a = None
        projected_b = None
        if view_a is not None:
            A = np.asarray(view_a, dtype=float) - self._mean_a
            projected_a = A @ self.weights_a_
        if view_b is not None:
            B = np.asarray(view_b, dtype=float) - self._mean_b
            projected_b = B @ self.weights_b_
        return projected_a, projected_b

    def fit_transform(
        self, view_a: np.ndarray, view_b: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fit and return both projections."""
        self.fit(view_a, view_b)
        projected_a, projected_b = self.transform(view_a, view_b)
        assert projected_a is not None and projected_b is not None
        return projected_a, projected_b

    def shared_representation(
        self, view_a: np.ndarray, view_b: np.ndarray
    ) -> np.ndarray:
        """Average of the two projections — the latent code estimate."""
        projected_a, projected_b = self.transform(view_a, view_b)
        assert projected_a is not None and projected_b is not None
        return (projected_a + projected_b) / 2.0
