"""Multi-view learning substrate: views, co-training, subspace (CCA)."""

from repro.multiview.cotraining import CoTrainingClassifier
from repro.multiview.fusion import LateFusionClassifier
from repro.multiview.subspace import CCA
from repro.multiview.views import FacetedDataset

__all__ = ["CoTrainingClassifier", "LateFusionClassifier", "CCA", "FacetedDataset"]
