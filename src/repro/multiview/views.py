"""Faceted datasets: named views over column groups.

The multi-view vocabulary of the paper (Sec. I.A): input data facets
are *views*; multiple-kernel learning, co-training and subspace
learning all treat views differently.  ``FacetedDataset`` is the value
type shared by those learners: a data matrix plus a named partition of
its columns, with a small algebra (merge, drop, restrict) mirroring the
lattice moves on the feature partition.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.combinatorics.partitions import SetPartition

__all__ = ["FacetedDataset"]


class FacetedDataset:
    """A data matrix with a named facet (view) structure on its columns.

    >>> import numpy as np
    >>> data = FacetedDataset(np.zeros((3, 4)), {"a": (0, 1), "b": (2, 3)})
    >>> data.view_names
    ('a', 'b')
    """

    def __init__(self, X: np.ndarray, views: Mapping[str, Sequence[int]]):
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if not views:
            raise ValueError("need at least one view")
        cleaned: dict[str, tuple[int, ...]] = {}
        seen: set[int] = set()
        for name, columns in views.items():
            columns = tuple(int(c) for c in columns)
            if not columns:
                raise ValueError(f"view {name!r} is empty")
            overlap = seen & set(columns)
            if overlap:
                raise ValueError(f"views overlap on columns {sorted(overlap)}")
            if any(c < 0 or c >= X.shape[1] for c in columns):
                raise ValueError(f"view {name!r} has out-of-range columns")
            seen.update(columns)
            cleaned[name] = columns
        if seen != set(range(X.shape[1])):
            missing = sorted(set(range(X.shape[1])) - seen)
            raise ValueError(f"columns not assigned to any view: {missing}")
        self.X = X
        self._views = cleaned

    # ------------------------------------------------------------------

    @property
    def n_samples(self) -> int:
        return self.X.shape[0]

    @property
    def n_features(self) -> int:
        return self.X.shape[1]

    @property
    def view_names(self) -> tuple[str, ...]:
        return tuple(self._views)

    @property
    def views(self) -> dict[str, tuple[int, ...]]:
        return dict(self._views)

    def columns(self, name: str) -> tuple[int, ...]:
        """Column indices of one view."""
        try:
            return self._views[name]
        except KeyError:
            raise KeyError(f"no view named {name!r}") from None

    def view(self, name: str) -> np.ndarray:
        """The sub-matrix of one view."""
        return self.X[:, list(self.columns(name))]

    def partition(self) -> SetPartition:
        """The facet structure as a partition of column indices."""
        return SetPartition(list(self._views.values()))

    # ------------------------------------------------------------------

    def merge_views(self, first: str, second: str, name: str | None = None) -> "FacetedDataset":
        """Return a dataset with two views merged (a lattice coarsening)."""
        if first == second:
            raise ValueError("cannot merge a view with itself")
        merged_name = name or f"{first}+{second}"
        views = {}
        for view_name, columns in self._views.items():
            if view_name in (first, second):
                continue
            views[view_name] = columns
        views[merged_name] = self.columns(first) + self.columns(second)
        return FacetedDataset(self.X, views)

    def drop_view(self, name: str) -> "FacetedDataset":
        """Return a dataset without one view (columns removed)."""
        if name not in self._views:
            raise KeyError(f"no view named {name!r}")
        if len(self._views) == 1:
            raise ValueError("cannot drop the only view")
        keep = [
            (view_name, columns)
            for view_name, columns in self._views.items()
            if view_name != name
        ]
        kept_columns = [c for _, columns in keep for c in columns]
        remap = {old: new for new, old in enumerate(kept_columns)}
        views = {
            view_name: tuple(remap[c] for c in columns) for view_name, columns in keep
        }
        return FacetedDataset(self.X[:, kept_columns], views)

    def subsample(self, indices: Sequence[int]) -> "FacetedDataset":
        """Return a row-subsampled dataset with the same view structure."""
        return FacetedDataset(self.X[list(indices)], self._views)

    def __repr__(self) -> str:
        views = ", ".join(f"{name}:{len(cols)}" for name, cols in self._views.items())
        return f"FacetedDataset({self.n_samples}x{self.n_features}, views=[{views}])"
