"""Spawn localhost worker *processes* — examples, benchmarks, CI.

:func:`spawn_local_workers` launches ``n`` copies of
``python -m repro.cluster.worker --port 0`` as real subprocesses (their
own interpreters, address spaces, and sockets — the honest localhost
stand-in for a rack of nodes), parses each worker's announce line for
the OS-assigned port, and returns a :class:`LocalWorkers` handle that
is also a context manager::

    with spawn_local_workers(2) as cluster:
        search = PartitionMKLSearch(backend="sockets", workers=cluster.addresses)
        ...

In-process alternatives for tests and docs snippets live on
:class:`~repro.cluster.worker.WorkerServer` directly
(``start_background()`` serves on a daemon thread over real sockets).
"""

from __future__ import annotations

import os
import queue
import subprocess
import sys
import threading
import time
from pathlib import Path

__all__ = ["LocalWorkers", "spawn_local_workers"]

_ANNOUNCE = "repro-cluster-worker listening on "


class LocalWorkers:
    """Handle over spawned worker subprocesses; context-manages cleanup."""

    def __init__(self, processes: list[subprocess.Popen], addresses: list[str]):
        self.processes = processes
        self.addresses = addresses

    def __enter__(self) -> "LocalWorkers":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def kill(self, index: int) -> None:
        """Hard-kill one worker (fault-path demonstrations)."""
        self.processes[index].kill()
        self.processes[index].wait(timeout=10)

    def stop(self) -> None:
        """Terminate every worker process still running."""
        for process in self.processes:
            if process.poll() is None:
                process.terminate()
        deadline = time.monotonic() + 10
        for process in self.processes:
            if process.poll() is None:
                try:
                    process.wait(timeout=max(0.1, deadline - time.monotonic()))
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait(timeout=10)
            if process.stdout is not None:
                process.stdout.close()


def _drain_lines(stdout, lines: "queue.Queue") -> None:
    """Feed a worker's stdout lines to a queue; ``None`` marks EOF.

    Runs on a daemon thread for the process's whole life, so the pipe
    can never fill up and block the worker, and close races during
    teardown are swallowed.
    """
    try:
        for line in stdout:
            lines.put(line)
    except Exception:
        pass
    lines.put(None)


def _src_root() -> str:
    """Directory to put on the workers' PYTHONPATH (``.../src``)."""
    import repro

    return str(Path(repro.__file__).resolve().parent.parent)


def spawn_local_workers(
    n: int,
    host: str = "127.0.0.1",
    startup_timeout: float = 30.0,
    secret: str | None = None,
) -> LocalWorkers:
    """Start ``n`` worker subprocesses on OS-assigned localhost ports.

    ``secret`` enables shared-secret frame authentication on every
    worker (delivered via the ``REPRO_CLUSTER_SECRET`` environment
    variable, never argv); pass the same secret to the backend.
    """
    if n < 1:
        raise ValueError("spawn at least one worker")
    env = dict(os.environ)
    src = _src_root()
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else f"{src}{os.pathsep}{existing}"
    if secret is not None:
        env["REPRO_CLUSTER_SECRET"] = secret
    processes: list[subprocess.Popen] = []
    addresses: list[str] = []
    try:
        for _ in range(n):
            process = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.cluster.worker",
                    "--host",
                    host,
                    "--port",
                    "0",
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
                env=env,
            )
            processes.append(process)
        deadline = time.monotonic() + startup_timeout
        for process in processes:
            # Interpreter noise (warnings) may precede the announce
            # line; skip anything that is not it.  A daemon reader
            # thread feeds a queue so the deadline actually fires even
            # if the worker starts but never prints — a bare readline()
            # (or select on the *buffered* text stream) can block
            # forever.
            lines: queue.Queue = queue.Queue()
            threading.Thread(
                target=_drain_lines, args=(process.stdout, lines), daemon=True
            ).start()
            seen: list[str] = []
            line = None
            while time.monotonic() < deadline:
                try:
                    line = lines.get(
                        timeout=max(0.01, deadline - time.monotonic())
                    )
                except queue.Empty:
                    break
                if line is None or line.startswith(_ANNOUNCE):
                    break  # EOF (worker died) or the announce
                seen.append(line)
            if line is None or not line.startswith(_ANNOUNCE):
                raise RuntimeError(
                    "worker subprocess failed to announce its address "
                    f"within {startup_timeout}s; output {seen!r} "
                    f"(exit code {process.poll()})"
                )
            addresses.append(line[len(_ANNOUNCE):].strip())
    except BaseException:
        LocalWorkers(processes, addresses).stop()
        raise
    return LocalWorkers(processes, addresses)
