"""Networked evaluation worker: scores envelopes, owns resident strips.

``WorkerServer`` is one node of the cluster: a TCP server speaking the
:mod:`repro.cluster.protocol` framing.  Run it standalone::

    python -m repro.cluster.worker --port 9701

or embed it (tests, docs snippets, single-process demos)::

    server = WorkerServer()          # port 0: OS-assigned
    host, port = server.start_background()
    ...
    server.stop()

Two planes of traffic arrive on separate connections:

* **task plane** — pipelined ``MSG_TASK`` frames carrying pickled
  :class:`~repro.engine.tasks.EngineTask` envelopes; each is scored
  with :func:`~repro.engine.tasks.score_task_payload` (pure O(b²)
  scalar arithmetic, bit-identical to the serial engine) and answered
  with a ``MSG_RESULT`` in arrival order.
* **placement plane** — request/reply frames that make this worker a
  *holder* of specific block-row strips of the sharded Gram layout
  (:class:`~repro.engine.cache.ShardedGramCache` semantics over the
  wire).  After a one-time ``MSG_INIT`` (the sample, kernel factory
  and held row slices — the localhost stand-in for data that, in a
  real IoT deployment, is born on the node), the worker materialises,
  normalises, centres and *keeps* its strips; only O(n) vectors and
  O(1) scalars ever travel per block.  The arithmetic mirrors
  ``ShardedGramCache`` / ``ShardedBlockStatsCache`` line for line, so
  reduced statistics are bit-identical to the in-process sharded
  caches.  The block handlers are **idempotent**: a replayed request
  (the coordinator's fan-out retry after a peer worker died) answers
  from resident state instead of failing, and a worker that adopted a
  strip mid-block self-heals by computing the missing raw strip.  The
  same plane carries the **landmark factor strips** of the low-rank
  scoring path (``MSG_LANDMARK_FACTOR`` / ``_STATS`` / ``_PAIR``):
  only the m×r whitening transform and O(m) vectors cross the wire,
  each worker builds ``k(X[rows], X[L]) @ T`` for its own rows, and
  the handlers rebuild any missing strip from the transform in the
  request body (factor strips are cheaper to rebuild than to ship).

A third plane rides the task connections once a search has finished:

* **serving plane** — ``MSG_SERVE_INSTALL`` / ``_ROWS`` / ``_DROP`` /
  ``_STATUS`` frames embed a
  :class:`~repro.serving.store.StripModelStore` in the worker:
  versioned combined-model parameters plus this worker's training-row
  strips stay resident, and each request batch is answered by strip-wise
  cross-Gram math (never an n×n materialisation).  An install may ship
  ``rows=None`` to reuse the placement-resident sample from ``MSG_INIT``
  instead of re-sending rows.  Serve replies *echo* the request frame
  type (unlike placement's generic ``MSG_OK``) so both directions are
  booked in the ``serve`` wire bucket.

Resilience hooks:

* ``secret=`` — every frame on every connection must carry (and is
  answered with) the shared-secret HMAC trailer; tampered, replayed or
  unauthenticated frames are answered with ``MSG_ERROR`` and the
  connection dropped, without taking the server down for its peers;
* ``MSG_STRIP_STATE`` / ``MSG_STRIP_INSTALL`` — the re-replication
  pair: a live holder's built strips are fetched and installed on a
  survivor, restoring the replication factor after a holder death;
* ``MSG_STRIP_REBUILD`` — the explicit ``replication=1`` fallback: the
  worker adopts row slices and rebuilds the named blocks' strips from
  its own sample copy (raw → scale → centre, given the already-reduced
  scale and row statistics).

Fault injection for tests: ``fail_after=N`` makes the server stop
abruptly (no reply, sockets torn down) after scoring N task envelopes,
simulating a node killed mid-search.  Richer scripted faults (hangs,
garbage emission, frame-counted kills) live in
``tests/test_cluster_faults.py``'s ``FaultyWorker``.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import socket
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    MSG_BLOCK_CENTER,
    MSG_BLOCK_RAW,
    MSG_BLOCK_SCALE,
    MSG_ERROR,
    MSG_INIT,
    MSG_JOIN,
    MSG_JOIN_ACK,
    MSG_LANDMARK_FACTOR,
    MSG_LANDMARK_PAIR,
    MSG_LANDMARK_STATS,
    MSG_OK,
    MSG_PAIR,
    MSG_PING,
    MSG_PONG,
    MSG_RESULT,
    MSG_SERVE_DROP,
    MSG_SERVE_INSTALL,
    MSG_SERVE_ROWS,
    MSG_SERVE_STATUS,
    MSG_SHUTDOWN,
    MSG_STRIP_INSTALL,
    MSG_STRIP_REBUILD,
    MSG_STRIP_STATE,
    MSG_STRIPS_FETCH,
    MSG_TARGET,
    MSG_TASK,
    MSG_TELEMETRY,
    ConnectionClosed,
    FrameAuth,
    ProtocolError,
    dump_payload,
    load_payload,
    recv_frame,
    send_frame,
)
from repro.engine.cache import _normalize_factor_rows
from repro.engine.tasks import encode_result, score_task_payload
from repro.telemetry import MetricsRegistry, get_tracer

__all__ = ["WorkerServer", "configure_worker_logging", "main"]

logger = logging.getLogger("repro.cluster.worker")

# Serve frame -> StripModelStore op.  The worker resolves the wire type
# to the transport-neutral op name so every backend shares one dispatch
# (``repro.serving.store.handle_serve_op``).
_SERVE_OPS = {
    MSG_SERVE_INSTALL: "install",
    MSG_SERVE_ROWS: "rows",
    MSG_SERVE_DROP: "drop",
    MSG_SERVE_STATUS: "status",
}


@dataclass
class _PlacementState:
    """Resident shard-ownership state installed by ``MSG_INIT``.

    ``slices`` maps strip index -> this worker's row slice; strips for
    strip indices held by other workers are never built here (until an
    install/rebuild adopts them).  Strip arrays are keyed by the
    canonical block key exactly like the in-process caches.
    """

    X: np.ndarray
    block_kernel: object
    normalize: bool
    slices: dict[int, slice]
    centered_y: np.ndarray | None = None
    landmarks: np.ndarray | None = None
    raw: dict[tuple, dict[int, np.ndarray]] = field(default_factory=dict)
    strips: dict[tuple, dict[int, np.ndarray]] = field(default_factory=dict)
    centered: dict[tuple, dict[int, np.ndarray]] = field(default_factory=dict)
    factor_strips: dict[tuple, dict[int, np.ndarray]] = field(default_factory=dict)
    factor_centered: dict[tuple, dict[int, np.ndarray]] = field(
        default_factory=dict
    )

    def resident_bytes(self) -> int:
        """Bytes of strip state currently resident on this worker."""
        total = 0
        for store in (
            self.strips,
            self.centered,
            self.factor_strips,
            self.factor_centered,
        ):
            for per_strip in store.values():
                total += sum(strip.nbytes for strip in per_strip.values())
        return total


class WorkerServer:
    """One cluster node: scores task envelopes, holds placed row strips.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` lets the OS pick (read it back from
        ``server.port``).  The listening socket is bound in the
        constructor so the address is known before serving starts.
    max_frame_bytes:
        Frames over this size are rejected by the protocol layer.
    secret:
        Shared secret: every frame received must carry a valid HMAC
        trailer, and every reply carries one.  ``None`` (default)
        speaks the exact unauthenticated protocol.
    fail_after:
        Test hook — after this many task envelopes have been scored,
        the server tears itself down without replying (simulates a
        worker killed mid-search).  ``None`` disables.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        secret: str | bytes | None = None,
        fail_after: int | None = None,
    ):
        self.max_frame_bytes = int(max_frame_bytes)
        if secret is not None and not secret:
            raise ValueError(
                "secret must be non-empty; pass None to disable frame "
                "authentication explicitly"
            )
        self.secret = secret
        self.fail_after = fail_after
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(16)
        self.host, self.port = self._listener.getsockname()[:2]
        self._lock = threading.Lock()
        # Serialises every placement/replication handler: the planes
        # arrive on separate connections (hence separate threads), and
        # a strip copy iterating the resident stores while a block
        # build inserts into them would corrupt the state they share.
        self._placement_op_lock = threading.Lock()
        # Placement residency is namespaced so concurrent tenants (or a
        # tenant next to the default single-search plane) each get their
        # own strip store: a second MSG_INIT in a different namespace
        # adds a sibling state instead of clobbering the first.
        self._placements: dict[str, _PlacementState] = {}
        # Serving-plane residency: created lazily on the first serve
        # frame so workers that never serve pay nothing.
        self._serving_lock = threading.Lock()
        self._serving_store = None
        self._connections: set[socket.socket] = set()
        self._stopped = threading.Event()
        self._tasks_scored = 0
        self._serve_thread: threading.Thread | None = None
        # Always-on op/error counters answered over MSG_TELEMETRY.
        # Counting is a dict add under a lock — microseconds against the
        # millisecond-scale scoring it books — and never touches any
        # value the arithmetic reads, so results stay bit-identical.
        self.metrics = MetricsRegistry()
        self._started_monotonic = time.monotonic()

    # -- lifecycle -----------------------------------------------------

    @property
    def address(self) -> str:
        """``host:port`` string accepted by the coordinator."""
        return f"{self.host}:{self.port}"

    def start_background(self) -> tuple[str, int]:
        """Serve on a daemon thread; returns ``(host, port)``."""
        if self._serve_thread is None:
            self._serve_thread = threading.Thread(
                target=self.serve_forever,
                name=f"cluster-worker:{self.port}",
                daemon=True,
            )
            self._serve_thread.start()
        return self.host, self.port

    def serve_forever(self) -> None:
        """Accept connections until :meth:`stop`; thread per connection."""
        while not self._stopped.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                break  # listener closed by stop()
            with self._lock:
                if self._stopped.is_set():
                    conn.close()
                    break
                self._connections.add(conn)
            threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            ).start()

    def stop(self) -> None:
        """Tear the server down: listener and every open connection."""
        self._stopped.set()
        # A thread blocked in accept() holds the listening socket alive
        # even after close() — the in-flight syscall pins it, keeping
        # the port bound.  Shut the listener down and poke it with a
        # throwaway connection so the accept returns and the port is
        # actually released.
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            with socket.create_connection((self.host, self.port), timeout=0.2):
                pass
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            connections, self._connections = list(self._connections), set()
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()

    # -- connection loop -----------------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        auth = FrameAuth(self.secret) if self.secret else None
        try:
            while not self._stopped.is_set():
                try:
                    msg_type, payload, _ = recv_frame(
                        conn, self.max_frame_bytes, auth=auth
                    )
                except ConnectionClosed:
                    return
                except ProtocolError as error:
                    # Garbage on the wire (or an unauthenticated /
                    # tampered / replayed frame): report once, drop the
                    # connection.  The server itself keeps serving —
                    # one misbehaving client must not take the node
                    # down for its peers.
                    self.metrics.count("worker.protocol_errors")
                    logger.warning(
                        "protocol error on %s:%s connection: %s",
                        self.host,
                        self.port,
                        error,
                    )
                    try:
                        send_frame(
                            conn, MSG_ERROR, dump_payload(str(error)), auth=auth
                        )
                    except OSError:
                        pass
                    return
                if not self._dispatch(conn, msg_type, payload, auth):
                    return
        except OSError:
            return  # connection torn down under us (stop(), peer reset)
        finally:
            with self._lock:
                self._connections.discard(conn)
            conn.close()

    def _dispatch(
        self,
        conn: socket.socket,
        msg_type: int,
        payload: bytes,
        auth: FrameAuth | None = None,
    ) -> bool:
        """Handle one frame; returns False to end the connection."""
        if msg_type == MSG_TASK:
            if self.fail_after is not None:
                with self._lock:
                    self._tasks_scored += 1
                    tripped = self._tasks_scored > self.fail_after
                if tripped:
                    logger.warning(
                        "fail_after=%s tripped: simulating node death",
                        self.fail_after,
                    )
                    self.stop()  # simulated kill: no reply, sockets gone
                    return False
            t0 = time.perf_counter()
            try:
                result = encode_result(*score_task_payload(payload))
            except Exception as error:
                # An unscorable envelope is an application error, not a
                # node death: answer MSG_ERROR so the coordinator raises
                # instead of reassigning the poison envelope across the
                # fleet (which would kill every worker's connection in
                # turn and misreport fleet death).
                self.metrics.count("worker.task_errors")
                logger.warning("task envelope failed to score: %s", error)
                send_frame(
                    conn,
                    MSG_ERROR,
                    dump_payload(f"{type(error).__name__}: {error}"),
                    auth=auth,
                )
                return True
            t1 = time.perf_counter()
            self.metrics.count("worker.tasks_scored")
            self.metrics.observe("worker.task_seconds", t1 - t0)
            tracer = get_tracer()
            if tracer.enabled:
                tracer.record_span(
                    "worker.score_task", t0, t1, cat="worker", bytes=len(payload)
                )
            send_frame(conn, MSG_RESULT, result, auth=auth)
            return True
        if msg_type == MSG_PING:
            self.metrics.count("worker.pings")
            send_frame(conn, MSG_PONG, b"", auth=auth)
            return True
        if msg_type == MSG_SHUTDOWN:
            logger.info("shutdown frame received; stopping")
            send_frame(conn, MSG_OK, b"", auth=auth)
            self.stop()
            return False
        if msg_type == MSG_TELEMETRY:
            # Introspection poll: answered from counters and resident
            # state on any plane's connection, echoing MSG_TELEMETRY so
            # both directions book in the "telemetry" wire bucket.
            snapshot = self.telemetry_snapshot()
            send_frame(conn, MSG_TELEMETRY, dump_payload(snapshot), auth=auth)
            return True
        if msg_type == MSG_JOIN:
            # Membership handshake: a coordinator admitting this worker
            # (revived or brand new) asks for an announce snapshot.  The
            # reply states what this node still holds so the admitting
            # side knows whether strips must be migrated or are already
            # resident (a coordinator rejoining a live fleet).
            self.metrics.count("worker.joins")
            with self._lock:
                placements = dict(self._placements)
            resident = sorted(
                {
                    index
                    for state in placements.values()
                    for index in state.slices
                }
            )
            announce = {
                "pid": os.getpid(),
                "address": self.address,
                "has_placement": bool(placements),
                "strips": resident,
            }
            logger.info(
                "join handshake answered (resident strips: %s)",
                announce["strips"],
            )
            send_frame(conn, MSG_JOIN_ACK, dump_payload(announce), auth=auth)
            return True
        if msg_type in _SERVE_OPS:
            op = _SERVE_OPS[msg_type]
            try:
                reply = self._dispatch_serve(msg_type, payload)
            except Exception as error:  # surfaced plane-side, loudly
                self.metrics.count("worker.serve_errors")
                logger.warning("serve op %s failed: %s", op, error)
                send_frame(
                    conn,
                    MSG_ERROR,
                    dump_payload(f"{type(error).__name__}: {error}"),
                    auth=auth,
                )
                return True
            self.metrics.count("worker.serve_ops", op=op)
            # Echo the request type (not MSG_OK): serve replies must
            # book in the "serve" wire bucket in both directions.
            send_frame(conn, msg_type, dump_payload(reply), auth=auth)
            return True
        try:
            with self._placement_op_lock:
                reply = self._dispatch_placement(msg_type, payload)
        except Exception as error:  # surfaced coordinator-side, loudly
            self.metrics.count("worker.placement_errors")
            logger.warning(
                "placement op (msg_type=%s) failed: %s", msg_type, error
            )
            send_frame(
                conn,
                MSG_ERROR,
                dump_payload(f"{type(error).__name__}: {error}"),
                auth=auth,
            )
            return True
        self.metrics.count("worker.placement_ops", msg_type=msg_type)
        send_frame(conn, MSG_OK, dump_payload(reply), auth=auth)
        return True

    # -- telemetry plane -----------------------------------------------

    def telemetry_snapshot(self) -> dict:
        """Everything a fleet poll wants to know about this node.

        Pickle-friendly plain dicts only: liveness/identity, the
        always-on op counters, placement residency (strip indices and
        resident bytes) and serving residency (versions and bytes),
        plus the in-process tracer's spans when tracing is enabled
        worker-side (``--trace`` on the CLI).
        """
        with self._lock:
            n_connections = len(self._connections)
            placements = dict(self._placements)
            tasks_scored = self._tasks_scored
        snapshot = {
            "address": self.address,
            "pid": os.getpid(),
            "uptime_s": time.monotonic() - self._started_monotonic,
            "n_connections": n_connections,
            "metrics": self.metrics.snapshot(),
            "placement": None,
            "serving": None,
        }
        if self.fail_after is not None:
            snapshot["tasks_before_fail"] = max(
                0, self.fail_after - tasks_scored
            )
        if placements:
            strips = sorted(
                {
                    index
                    for state in placements.values()
                    for index in state.slices
                }
            )
            snapshot["placement"] = {
                "n_strips": len(strips),
                "strips": strips,
                "resident_bytes": sum(
                    state.resident_bytes() for state in placements.values()
                ),
                "namespaces": sorted(placements),
            }
        with self._serving_lock:
            store = self._serving_store
        if store is not None:
            snapshot["serving"] = store.status()
        tracer = get_tracer()
        if tracer.enabled:
            # Bounded tail: a poll is a liveness probe, not a bulk
            # trace export — workers export full traces themselves.
            snapshot["spans"] = tracer.records()[-200:]
        return snapshot

    # -- serving plane -------------------------------------------------

    def _dispatch_serve(self, msg_type: int, payload: bytes):
        """Route one serve frame through the shared store dispatch.

        The import is deliberately lazy: :mod:`repro.serving` imports
        the cluster coordinator, so importing it at module scope here
        would close an import cycle.  Only the cycle-free store module
        is touched.
        """
        from repro.serving.store import StripModelStore, handle_serve_op

        with self._serving_lock:
            if self._serving_store is None:
                self._serving_store = StripModelStore()
            store = self._serving_store
        op = _SERVE_OPS[msg_type]
        resident_X = None
        if op == "install":
            # Snapshot the placement-resident sample for rows=None
            # installs.  Lock order is serving -> placement only (the
            # placement handlers never take the serving lock), so this
            # cannot deadlock with a concurrent placement op.
            with self._placement_op_lock:
                # rows=None installs reuse the single-search placement's
                # resident sample; prefer the default namespace, fall
                # back to a sole tenant namespace when that is all the
                # node holds.
                state = self._placements.get("default")
                if state is None and len(self._placements) == 1:
                    (state,) = self._placements.values()
                if state is not None:
                    resident_X = state.X
        return handle_serve_op(
            store, op, load_payload(payload), resident_X=resident_X
        )

    # -- placement plane -----------------------------------------------
    #
    # Every numerical step below mirrors ShardedGramCache /
    # ShardedBlockStatsCache exactly (same expressions, same operand
    # order), which is what makes the reduced statistics bit-identical
    # to the in-process sharded caches.

    def _raw_strips(self, state: _PlacementState, key: tuple) -> dict[int, np.ndarray]:
        """Raw (unscaled) strips for a block, for every held slice.

        Self-healing for replayed or late-adopted strips: a worker that
        missed the original raw pass for some slice (fan-out retry,
        adoption mid-block) rebuilds exactly the missing raw strips
        from its own sample copy instead of failing.
        """
        raw = state.raw.setdefault(key, {})
        missing = [index for index in state.slices if index not in raw]
        if missing:
            kernel = state.block_kernel(key).bind(state.X)
            for index in missing:
                sl = state.slices[index]
                raw[index] = kernel(state.X[sl], state.X)
        return raw

    def _scaled_strips(
        self, state: _PlacementState, key: tuple, scale
    ) -> dict[int, np.ndarray]:
        """Cosine-scaled strips for every held slice, filling any gap.

        Strips already resident (normal replies, replays after a
        fan-out retry, copies installed by re-replication) are reused
        untouched; only missing slices are built — with exactly the
        arithmetic of the first pass, so the values are bit-identical
        wherever they are computed.
        """
        strips = state.strips.setdefault(key, {})
        missing = [index for index in state.slices if index not in strips]
        if missing:
            raw = self._raw_strips(state, key)
            scale_arr = (
                np.asarray(scale, dtype=float) if scale is not None else None
            )
            for index in missing:
                strip = raw[index]
                if scale_arr is not None:
                    strip = strip / np.outer(
                        scale_arr[state.slices[index]], scale_arr
                    )
                strips[index] = strip
            state.raw.pop(key, None)
        return strips

    def _landmark_strips(
        self, state: _PlacementState, key: tuple, transform
    ) -> dict[int, np.ndarray]:
        """Nyström factor strips for every held slice, filling any gap.

        The m×r whitening transform always travels in the request body,
        so the handler is self-healing: a worker that adopted a strip
        mid-block (or answers a fan-out replay) rebuilds exactly the
        missing factor strips — ``k(X[rows], X[L]) @ T``, row-normalised
        strip-locally — with the same expressions as the in-process
        :class:`~repro.engine.cache.ShardedLandmarkGramCache`, keeping
        the bit-identity contract.  Factor strips are never shipped
        between workers: at O(n·m/shards) they are cheaper to rebuild
        than to replicate.
        """
        strips = state.factor_strips.setdefault(key, {})
        missing = [index for index in state.slices if index not in strips]
        if missing:
            if state.landmarks is None:
                raise RuntimeError(
                    "landmark request but MSG_INIT carried no landmarks"
                )
            transform = np.asarray(transform, dtype=float)
            landmarks = state.landmarks
            kernel = state.block_kernel(key).bind(state.X[landmarks])
            for index in missing:
                sl = state.slices[index]
                strip = kernel(state.X[sl], state.X[landmarks]) @ transform
                if state.normalize:
                    strip = _normalize_factor_rows(strip)
                strips[index] = strip
        return strips

    def _landmark_centered(
        self, state: _PlacementState, key: tuple, transform, col_means
    ) -> dict[int, np.ndarray]:
        """Centred factor strips (``HF = F - col_means``), filling gaps.

        ``col_means`` is the globally-reduced column mean vector the
        coordinator computed from every strip's column sums, so the
        per-strip centring here matches the in-process sharded landmark
        cache exactly.
        """
        centered = state.factor_centered.setdefault(key, {})
        missing = [index for index in state.slices if index not in centered]
        if missing:
            strips = self._landmark_strips(state, key, transform)
            col_means = np.asarray(col_means, dtype=float)
            for index in missing:
                centered[index] = strips[index] - col_means
        return centered

    def _dispatch_placement(self, msg_type: int, payload: bytes):
        request = load_payload(payload)
        # Every placement frame carries (or defaults) a namespace; one
        # namespace per tenant keeps concurrent searches' strip stores
        # disjoint on a shared node.
        ns = str(request.get("ns", "default"))
        if msg_type == MSG_INIT:
            landmarks = request.get("landmarks")
            state = _PlacementState(
                X=np.asarray(request["X"], dtype=float),
                block_kernel=request["block_kernel"],
                normalize=bool(request["normalize"]),
                slices={int(i): sl for i, sl in request["slices"].items()},
                landmarks=(
                    None
                    if landmarks is None
                    else np.asarray(landmarks, dtype=int)
                ),
            )
            with self._lock:
                self._placements[ns] = state
            return {"n_strips": len(state.slices)}
        state = self._placements.get(ns)
        if state is None:
            raise RuntimeError(
                f"placement plane used before MSG_INIT (namespace {ns!r})"
            )
        if msg_type == MSG_TARGET:
            state.centered_y = np.asarray(request["centered_y"], dtype=float)
            return {}
        if msg_type == MSG_STRIP_STATE:
            wanted = {int(s) for s in request["strips"]}
            held = wanted & set(state.slices)
            keys = request.get("keys")
            if keys is not None:
                keys = {tuple(k) for k in keys}
            # ``built`` always lists every block with resident state for
            # the wanted strips, so a replicator can page the copy one
            # block per frame (keys=[] lists without shipping arrays —
            # a whole search's strips in one frame could blow the
            # frame-size limit and wedge re-replication permanently).
            built = sorted(
                {
                    key
                    for store in (state.strips, state.centered)
                    for key, per in store.items()
                    if any(s in per for s in held)
                }
            )
            return {
                "slices": {s: state.slices[s] for s in held},
                "built": built,
                "scaled": {
                    key: {s: per[s] for s in held if s in per}
                    for key, per in state.strips.items()
                    if keys is None or key in keys
                },
                "centered": {
                    key: {s: per[s] for s in held if s in per}
                    for key, per in state.centered.items()
                    if keys is None or key in keys
                },
            }
        if msg_type == MSG_STRIP_INSTALL:
            for s, sl in request["slices"].items():
                state.slices[int(s)] = sl
            for store, shipped in (
                (state.strips, request["scaled"]),
                (state.centered, request["centered"]),
            ):
                for key, per in shipped.items():
                    store.setdefault(tuple(key), {}).update(
                        {int(s): np.asarray(strip) for s, strip in per.items()}
                    )
            return {"resident_bytes": state.resident_bytes()}
        if msg_type == MSG_STRIP_REBUILD:
            adopted = {int(s): sl for s, sl in request["slices"].items()}
            state.slices.update(adopted)
            for key, spec in request["blocks"].items():
                key = tuple(key)
                row_means = np.asarray(spec["row_means"], dtype=float)
                grand_mean = float(spec["grand_mean"])
                # The shared helpers fill exactly the adopted (missing)
                # slices with the one copy of the raw/scale arithmetic,
                # keeping the bit-identity contract in a single place.
                strips = self._scaled_strips(state, key, spec["scale"])
                centered = state.centered.setdefault(key, {})
                for index, strip in strips.items():
                    if index not in centered:
                        centered[index] = (
                            strip
                            - row_means[state.slices[index], None]
                            - row_means[None, :]
                            + grand_mean
                        )
            return {"resident_bytes": state.resident_bytes()}
        if msg_type == MSG_LANDMARK_FACTOR:
            strips = self._landmark_strips(
                state, tuple(request["key"]), request["transform"]
            )
            return {
                "col_sums": {
                    index: strip.sum(axis=0)
                    for index, strip in strips.items()
                },
                "resident_bytes": state.resident_bytes(),
            }
        if msg_type == MSG_LANDMARK_STATS:
            yc = state.centered_y
            if yc is None:
                raise RuntimeError("MSG_LANDMARK_STATS before MSG_TARGET")
            centered = self._landmark_centered(
                state,
                tuple(request["key"]),
                request["transform"],
                request["col_means"],
            )
            stats = {
                index: (
                    strip.T @ yc[state.slices[index]],
                    strip.T @ strip,
                )
                for index, strip in centered.items()
            }
            return {"stats": stats, "resident_bytes": state.resident_bytes()}
        if msg_type == MSG_LANDMARK_PAIR:
            first = self._landmark_centered(
                state,
                tuple(request["first"]),
                request["first_transform"],
                request["first_col_means"],
            )
            second = self._landmark_centered(
                state,
                tuple(request["second"]),
                request["second_transform"],
                request["second_col_means"],
            )
            return {
                "inners": {
                    index: first[index].T @ second[index]
                    for index in first
                    if index in second
                }
            }
        key = tuple(request["key"])
        if msg_type == MSG_BLOCK_RAW:
            raw = self._raw_strips(state, key)
            diag = {}
            for index, strip in raw.items():
                sl = state.slices[index]
                diag[index] = strip[
                    np.arange(sl.stop - sl.start), np.arange(sl.start, sl.stop)
                ]
            return {"diag": diag}
        if msg_type == MSG_BLOCK_SCALE:
            strips = self._scaled_strips(state, key, request["scale"])
            return {
                "row_means": {
                    index: strip.mean(axis=1) for index, strip in strips.items()
                }
            }
        if msg_type == MSG_BLOCK_CENTER:
            row_means = np.asarray(request["row_means"], dtype=float)
            grand_mean = float(request["grand_mean"])
            yc = state.centered_y
            if yc is None:
                raise RuntimeError("MSG_BLOCK_CENTER before MSG_TARGET")
            strips = self._scaled_strips(state, key, request.get("scale"))
            centered = state.centered.setdefault(key, {})
            for index, strip in strips.items():
                if index not in centered:
                    centered[index] = (
                        strip
                        - row_means[state.slices[index], None]
                        - row_means[None, :]
                        + grand_mean
                    )
            stats = {
                index: (
                    yc[state.slices[index]] @ strip @ yc,
                    np.sum(strip * strip),
                )
                for index, strip in centered.items()
            }
            return {"stats": stats, "resident_bytes": state.resident_bytes()}
        if msg_type == MSG_PAIR:
            # Answer with whatever strip pairs are resident; gaps (a
            # holder adopted after these blocks were centred) surface
            # coordinator-side as a missing index, which triggers the
            # idempotent re-centring heal — a worker-side KeyError
            # would read as an application error and kill the search.
            other = tuple(request["other"])
            first = state.centered.get(key, {})
            second = state.centered.get(other, {})
            return {
                "inners": {
                    index: np.sum(first[index] * second[index])
                    for index in first
                    if index in second
                }
            }
        if msg_type == MSG_STRIPS_FETCH:
            # Resident strips only; a gap (holder adopted after the
            # block was built) surfaces coordinator-side, where gram()
            # re-runs the idempotent scale fan-out to heal it.
            return {"strips": state.strips.get(key, {})}
        raise ProtocolError(f"message type {msg_type} not valid on this plane")


class _JsonLogFormatter(logging.Formatter):
    """One JSON object per log record (machine-ingestable worker logs)."""

    def format(self, record: logging.LogRecord) -> str:
        entry = {
            "ts": self.formatTime(record, datefmt="%Y-%m-%dT%H:%M:%S%z"),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
            "pid": record.process,
        }
        if record.exc_info:
            entry["exc"] = self.formatException(record.exc_info)
        return json.dumps(entry, sort_keys=True)


def configure_worker_logging(level: str = "warning", json_logs: bool = False) -> None:
    """Wire the ``repro.cluster.worker`` logger to stderr.

    Structured (``json_logs=True``) emits one JSON object per record;
    plain mode is human-readable.  stderr keeps the stdout announce
    line (parsed by ``spawn_local_workers``) unpolluted.
    """
    handler = logging.StreamHandler()
    if json_logs:
        handler.setFormatter(_JsonLogFormatter())
    else:
        handler.setFormatter(
            logging.Formatter(
                "%(asctime)s %(levelname)s %(name)s: %(message)s"
            )
        )
    logger.handlers = [handler]
    logger.setLevel(getattr(logging, level.upper()))
    logger.propagate = False


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: ``python -m repro.cluster.worker --port N``."""
    parser = argparse.ArgumentParser(
        description="repro.cluster evaluation worker (trusted networks only)"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 = OS-assigned (announced on stdout)"
    )
    parser.add_argument(
        "--max-frame-bytes", type=int, default=DEFAULT_MAX_FRAME_BYTES
    )
    parser.add_argument(
        "--secret-file",
        default=None,
        help=(
            "path to a file holding the shared HMAC secret; the "
            "REPRO_CLUSTER_SECRET environment variable is the "
            "argv-free alternative"
        ),
    )
    parser.add_argument(
        "--log-level",
        default="warning",
        choices=("debug", "info", "warning", "error"),
        help="worker log verbosity on stderr (default: warning)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit one JSON object per log record instead of plain text",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help=(
            "enable the in-process span tracer; spans ride back in "
            "MSG_TELEMETRY snapshots (python -m repro.cluster.status)"
        ),
    )
    args = parser.parse_args(argv)
    configure_worker_logging(args.log_level, args.log_json)
    if args.trace:
        get_tracer().enable()
    secret: str | None
    if args.secret_file is not None:
        with open(args.secret_file, "r", encoding="utf-8") as handle:
            secret = handle.read().strip()
        if not secret:
            # An empty secret file must not silently run unauthenticated.
            parser.error(f"secret file {args.secret_file!r} is empty")
    elif "REPRO_CLUSTER_SECRET" in os.environ:
        secret = os.environ["REPRO_CLUSTER_SECRET"]
        if not secret:
            # Same downgrade guard for broken secret injection: set
            # but empty is a misconfiguration, not a request for
            # unauthenticated operation (unset the variable for that).
            parser.error("REPRO_CLUSTER_SECRET is set but empty")
    else:
        secret = None
    server = WorkerServer(
        host=args.host,
        port=args.port,
        max_frame_bytes=args.max_frame_bytes,
        secret=secret,
    )
    # The announce line is parsed by spawn_local_workers; keep stable.
    print(f"repro-cluster-worker listening on {server.host}:{server.port}", flush=True)
    logger.info(
        "worker up on %s:%s (auth=%s, trace=%s)",
        server.host,
        server.port,
        "on" if secret else "off",
        "on" if args.trace else "off",
    )
    server.serve_forever()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
