"""Networked evaluation worker: scores envelopes, owns resident strips.

``WorkerServer`` is one node of the cluster: a TCP server speaking the
:mod:`repro.cluster.protocol` framing.  Run it standalone::

    python -m repro.cluster.worker --port 9701

or embed it (tests, docs snippets, single-process demos)::

    server = WorkerServer()          # port 0: OS-assigned
    host, port = server.start_background()
    ...
    server.stop()

Two planes of traffic arrive on separate connections:

* **task plane** — pipelined ``MSG_TASK`` frames carrying pickled
  :class:`~repro.engine.tasks.EngineTask` envelopes; each is scored
  with :func:`~repro.engine.tasks.score_task_payload` (pure O(b²)
  scalar arithmetic, bit-identical to the serial engine) and answered
  with a ``MSG_RESULT`` in arrival order.
* **placement plane** — request/reply frames that make this worker the
  *owner* of specific block-row strips of the sharded Gram layout
  (:class:`~repro.engine.cache.ShardedGramCache` semantics over the
  wire).  After a one-time ``MSG_INIT`` (the sample, kernel factory
  and owned row slices — the localhost stand-in for data that, in a
  real IoT deployment, is born on the node), the worker materialises,
  normalises, centres and *keeps* its strips; only O(n) vectors and
  O(1) scalars ever travel per block.  The arithmetic mirrors
  ``ShardedGramCache`` / ``ShardedBlockStatsCache`` line for line, so
  reduced statistics are bit-identical to the in-process sharded
  caches.

Fault injection for tests: ``fail_after=N`` makes the server stop
abruptly (no reply, sockets torn down) after scoring N task envelopes,
simulating a node killed mid-search.
"""

from __future__ import annotations

import argparse
import socket
import threading
from dataclasses import dataclass, field

import numpy as np

from repro.cluster import protocol
from repro.cluster.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    MSG_BLOCK_CENTER,
    MSG_BLOCK_RAW,
    MSG_BLOCK_SCALE,
    MSG_ERROR,
    MSG_INIT,
    MSG_OK,
    MSG_PAIR,
    MSG_PING,
    MSG_PONG,
    MSG_RESULT,
    MSG_SHUTDOWN,
    MSG_STRIPS_FETCH,
    MSG_TARGET,
    MSG_TASK,
    ConnectionClosed,
    ProtocolError,
    dump_payload,
    load_payload,
    recv_frame,
    send_frame,
)
from repro.engine.tasks import encode_result, score_task_payload

__all__ = ["WorkerServer", "main"]


@dataclass
class _PlacementState:
    """Resident shard-ownership state installed by ``MSG_INIT``.

    ``slices`` maps strip index -> this worker's row slice; strips for
    strip indices owned by other workers are never built here.  Strip
    arrays are keyed by the canonical block key exactly like the
    in-process caches.
    """

    X: np.ndarray
    block_kernel: object
    normalize: bool
    slices: dict[int, slice]
    centered_y: np.ndarray | None = None
    raw: dict[tuple, dict[int, np.ndarray]] = field(default_factory=dict)
    strips: dict[tuple, dict[int, np.ndarray]] = field(default_factory=dict)
    centered: dict[tuple, dict[int, np.ndarray]] = field(default_factory=dict)

    def resident_bytes(self) -> int:
        """Bytes of strip state currently resident on this worker."""
        total = 0
        for store in (self.strips, self.centered):
            for per_strip in store.values():
                total += sum(strip.nbytes for strip in per_strip.values())
        return total


class WorkerServer:
    """One cluster node: scores task envelopes, owns placed row strips.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` lets the OS pick (read it back from
        ``server.port``).  The listening socket is bound in the
        constructor so the address is known before serving starts.
    max_frame_bytes:
        Frames over this size are rejected by the protocol layer.
    fail_after:
        Test hook — after this many task envelopes have been scored,
        the server tears itself down without replying (simulates a
        worker killed mid-search).  ``None`` disables.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        fail_after: int | None = None,
    ):
        self.max_frame_bytes = int(max_frame_bytes)
        self.fail_after = fail_after
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(16)
        self.host, self.port = self._listener.getsockname()[:2]
        self._lock = threading.Lock()
        self._placement: _PlacementState | None = None
        self._connections: set[socket.socket] = set()
        self._stopped = threading.Event()
        self._tasks_scored = 0
        self._serve_thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------

    @property
    def address(self) -> str:
        """``host:port`` string accepted by the coordinator."""
        return f"{self.host}:{self.port}"

    def start_background(self) -> tuple[str, int]:
        """Serve on a daemon thread; returns ``(host, port)``."""
        if self._serve_thread is None:
            self._serve_thread = threading.Thread(
                target=self.serve_forever,
                name=f"cluster-worker:{self.port}",
                daemon=True,
            )
            self._serve_thread.start()
        return self.host, self.port

    def serve_forever(self) -> None:
        """Accept connections until :meth:`stop`; thread per connection."""
        while not self._stopped.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                break  # listener closed by stop()
            with self._lock:
                if self._stopped.is_set():
                    conn.close()
                    break
                self._connections.add(conn)
            threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            ).start()

    def stop(self) -> None:
        """Tear the server down: listener and every open connection."""
        self._stopped.set()
        # A thread blocked in accept() holds the listening socket alive
        # even after close() — the in-flight syscall pins it, keeping
        # the port bound.  Shut the listener down and poke it with a
        # throwaway connection so the accept returns and the port is
        # actually released.
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            with socket.create_connection((self.host, self.port), timeout=0.2):
                pass
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            connections, self._connections = list(self._connections), set()
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()

    # -- connection loop -----------------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while not self._stopped.is_set():
                try:
                    msg_type, payload, _ = recv_frame(conn, self.max_frame_bytes)
                except ConnectionClosed:
                    return
                except ProtocolError as error:
                    # Garbage on the wire: report once, drop the
                    # connection.  The server itself keeps serving —
                    # one misbehaving client must not take the node
                    # down for its peers.
                    try:
                        send_frame(conn, MSG_ERROR, dump_payload(str(error)))
                    except OSError:
                        pass
                    return
                if not self._dispatch(conn, msg_type, payload):
                    return
        except OSError:
            return  # connection torn down under us (stop(), peer reset)
        finally:
            with self._lock:
                self._connections.discard(conn)
            conn.close()

    def _dispatch(self, conn: socket.socket, msg_type: int, payload: bytes) -> bool:
        """Handle one frame; returns False to end the connection."""
        if msg_type == MSG_TASK:
            if self.fail_after is not None:
                with self._lock:
                    self._tasks_scored += 1
                    tripped = self._tasks_scored > self.fail_after
                if tripped:
                    self.stop()  # simulated kill: no reply, sockets gone
                    return False
            try:
                result = encode_result(*score_task_payload(payload))
            except Exception as error:
                # An unscorable envelope is an application error, not a
                # node death: answer MSG_ERROR so the coordinator raises
                # instead of reassigning the poison envelope across the
                # fleet (which would kill every worker's connection in
                # turn and misreport fleet death).
                send_frame(
                    conn, MSG_ERROR, dump_payload(f"{type(error).__name__}: {error}")
                )
                return True
            send_frame(conn, MSG_RESULT, result)
            return True
        if msg_type == MSG_PING:
            send_frame(conn, MSG_PONG, b"")
            return True
        if msg_type == MSG_SHUTDOWN:
            send_frame(conn, MSG_OK, b"")
            self.stop()
            return False
        try:
            reply = self._dispatch_placement(msg_type, payload)
        except Exception as error:  # surfaced coordinator-side, loudly
            send_frame(conn, MSG_ERROR, dump_payload(f"{type(error).__name__}: {error}"))
            return True
        send_frame(conn, MSG_OK, dump_payload(reply))
        return True

    # -- placement plane -----------------------------------------------
    #
    # Every numerical step below mirrors ShardedGramCache /
    # ShardedBlockStatsCache exactly (same expressions, same operand
    # order), which is what makes the reduced statistics bit-identical
    # to the in-process sharded caches.

    def _dispatch_placement(self, msg_type: int, payload: bytes):
        request = load_payload(payload)
        if msg_type == MSG_INIT:
            state = _PlacementState(
                X=np.asarray(request["X"], dtype=float),
                block_kernel=request["block_kernel"],
                normalize=bool(request["normalize"]),
                slices={int(i): sl for i, sl in request["slices"].items()},
            )
            with self._lock:
                self._placement = state
            return {"n_strips": len(state.slices)}
        state = self._placement
        if state is None:
            raise RuntimeError("placement plane used before MSG_INIT")
        if msg_type == MSG_TARGET:
            state.centered_y = np.asarray(request["centered_y"], dtype=float)
            return {}
        key = tuple(request["key"])
        if msg_type == MSG_BLOCK_RAW:
            kernel = state.block_kernel(key).bind(state.X)
            raw = {
                index: kernel(state.X[sl], state.X)
                for index, sl in state.slices.items()
            }
            state.raw[key] = raw
            diag = {}
            for index, strip in raw.items():
                sl = state.slices[index]
                diag[index] = strip[
                    np.arange(sl.stop - sl.start), np.arange(sl.start, sl.stop)
                ]
            return {"diag": diag}
        if msg_type == MSG_BLOCK_SCALE:
            scale = request["scale"]
            raw = state.raw.pop(key)
            if scale is not None:
                scale = np.asarray(scale, dtype=float)
                strips = {
                    index: strip / np.outer(scale[state.slices[index]], scale)
                    for index, strip in raw.items()
                }
            else:
                strips = raw
            state.strips[key] = strips
            return {
                "row_means": {
                    index: strip.mean(axis=1) for index, strip in strips.items()
                }
            }
        if msg_type == MSG_BLOCK_CENTER:
            row_means = np.asarray(request["row_means"], dtype=float)
            grand_mean = float(request["grand_mean"])
            yc = state.centered_y
            if yc is None:
                raise RuntimeError("MSG_BLOCK_CENTER before MSG_TARGET")
            centered = {
                index: strip
                - row_means[state.slices[index], None]
                - row_means[None, :]
                + grand_mean
                for index, strip in state.strips[key].items()
            }
            state.centered[key] = centered
            stats = {
                index: (
                    yc[state.slices[index]] @ strip @ yc,
                    np.sum(strip * strip),
                )
                for index, strip in centered.items()
            }
            return {"stats": stats, "resident_bytes": state.resident_bytes()}
        if msg_type == MSG_PAIR:
            other = tuple(request["other"])
            first, second = state.centered[key], state.centered[other]
            return {
                "inners": {
                    index: np.sum(first[index] * second[index])
                    for index in first
                }
            }
        if msg_type == MSG_STRIPS_FETCH:
            return {"strips": state.strips[key]}
        raise ProtocolError(f"message type {msg_type} not valid on this plane")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: ``python -m repro.cluster.worker --port N``."""
    parser = argparse.ArgumentParser(
        description="repro.cluster evaluation worker (trusted networks only)"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 = OS-assigned (announced on stdout)"
    )
    parser.add_argument(
        "--max-frame-bytes", type=int, default=DEFAULT_MAX_FRAME_BYTES
    )
    args = parser.parse_args(argv)
    server = WorkerServer(
        host=args.host, port=args.port, max_frame_bytes=args.max_frame_bytes
    )
    # The announce line is parsed by spawn_local_workers; keep stable.
    print(f"repro-cluster-worker listening on {server.host}:{server.port}", flush=True)
    server.serve_forever()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
