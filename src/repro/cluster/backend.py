"""``SocketBackend`` — the engine's ``backend="sockets"`` entry point.

Satisfies the same ``supports_tasks`` contract as
:class:`~repro.engine.backends.ProcessPoolBackend` (``map_tasks`` over
lazy envelope iterables, ``task_chunks`` sizing, ``warm_up``,
``close``), so :class:`~repro.engine.core.KernelEvaluationEngine`,
``PartitionMKLSearch`` and ``FacetedLearner`` gain networked execution
with no API change beyond ``backend=``/``workers=``.  Registered in the
engine's backend registry under ``"sockets"``::

    search = PartitionMKLSearch(backend="sockets",
                                workers=["127.0.0.1:9701", "127.0.0.1:9702"])

Resilience knobs (threaded through the engine's ``backend_options=``):

* ``secret=`` — shared-secret HMAC on every frame of every connection
  (:mod:`repro.cluster.protocol`); per-frame overhead is booked in the
  wire ledger as ``auth_bytes_*``;
* ``heartbeat_interval=`` / ``heartbeat_timeout=`` — liveness pings on
  dedicated monitor connections; a silent worker is evicted without
  waiting for a send/recv to fail (``heartbeat_bytes_*``,
  ``n_evicted``);
* ``replication=`` — strip replication factor for placement-aware
  sharding (default 2): a dead strip owner is replaced by promoting a
  replica, and the background re-replication restoring the factor is
  booked as ``replication_bytes_*`` / ``n_replicated_strips``.

Additionally exposes ``make_placed_cache`` — the hook the engine uses
when ``shards=`` is combined with this backend — returning a
:class:`~repro.cluster.placement.PlacedGramCache` whose row strips are
built and kept resident on the workers, and ``wire_stats()`` — the
per-search wire ledger (envelope bytes out/in, placement bytes,
heartbeat/auth/replication overhead, worker-resident strip bytes) the
engine surfaces on every ``SearchResult``.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any

import numpy as np

from repro.cluster.coordinator import Coordinator
from repro.cluster.placement import (
    PlacedGramCache,
    PlacedLandmarkGramCache,
    ShardPlacement,
)
from repro.cluster.protocol import DEFAULT_MAX_FRAME_BYTES
from repro.engine.tasks import (
    EngineTask,
    check_task_payload,
    default_task_chunks,
)

__all__ = ["SocketBackend"]


class SocketBackend:
    """Fan task envelopes out to networked workers over TCP.

    Parameters
    ----------
    workers:
        Worker addresses (``"host:port"`` strings or ``(host, port)``
        pairs); at least one.
    max_task_bytes:
        Envelopes over this wire size raise
        :class:`~repro.engine.tasks.TaskEnvelopeError` *before* any
        byte hits a socket — an oversized envelope means the upstream
        chunking or sharding is wrong, not that the network should
        silently strain.
    retries:
        Fleet-wide reconnect rounds attempted when every worker has
        died mid-batch (single-worker deaths cost nothing: their
        outstanding envelopes are reassigned to the survivors).
    window:
        Envelopes outstanding per worker (pipelining depth).
    secret:
        Shared secret for per-frame HMAC authentication; every worker
        must be started with the same secret.  ``None`` (default)
        speaks the exact unauthenticated protocol — zero overhead.
    heartbeat_interval, heartbeat_timeout:
        Liveness monitor cadence and eviction deadline (see
        :class:`~repro.cluster.coordinator.Coordinator`); ``None``
        disables the monitor.
    replication:
        Strip replication factor for placement-aware sharding;
        ``None`` defaults to ``min(2, n_workers)`` so a single strip
        owner death is survivable out of the box.
    """

    name = "sockets"
    supports_tasks = True

    def __init__(
        self,
        workers,
        max_task_bytes: int = 64 * 1024 * 1024,
        retries: int = 1,
        window: int = 2,
        connect_timeout: float = 10.0,
        io_timeout: float | None = 120.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        secret: str | bytes | None = None,
        heartbeat_interval: float | None = None,
        heartbeat_timeout: float | None = None,
        replication: int | None = None,
    ):
        if max_task_bytes < 1:
            raise ValueError("max_task_bytes must be positive")
        self.max_task_bytes = int(max_task_bytes)
        self.replication = replication
        self.coordinator = Coordinator(
            workers,
            retries=retries,
            window=window,
            connect_timeout=connect_timeout,
            io_timeout=io_timeout,
            max_frame_bytes=max_frame_bytes,
            secret=secret,
            heartbeat_interval=heartbeat_interval,
            heartbeat_timeout=heartbeat_timeout,
        )
        self._placed_caches: list[
            PlacedGramCache | PlacedLandmarkGramCache
        ] = []

    # -- tenancy -------------------------------------------------------

    def for_tenant(
        self,
        name: str,
        weight: float = 1.0,
        max_queue_depth: int | None = None,
    ):
        """A tenant-scoped view of this backend sharing the fleet.

        Registers ``name`` with the coordinator's fair-share scheduler
        (idempotent — re-registering updates the weight and admission
        bound) and returns a
        :class:`~repro.cluster.tenancy.TenantBackend` satisfying the
        full backend contract: its envelopes queue on the tenant's own
        lanes, its placed caches live in the tenant's worker-side
        namespace, and its ``wire_stats()`` reads the tenant's ledgers.
        Closing the view detaches only the tenant's caches; the shared
        fleet (and the tenant's ledgers) stay up.
        """
        from repro.cluster.tenancy import TenantBackend

        self.coordinator.register_tenant(
            name, weight=weight, max_queue_depth=max_queue_depth
        )
        return TenantBackend(self, name)

    # -- lifecycle -----------------------------------------------------

    def warm_up(self) -> None:
        """Connect and ping the fleet now instead of on first use."""
        self.coordinator.connect()

    def close(self) -> None:
        """Close every connection; workers keep serving other clients."""
        self.coordinator.close()

    def shutdown_workers(self) -> None:
        """Ask the worker processes themselves to exit (teardown)."""
        self.coordinator.shutdown_workers()

    # -- task plane ----------------------------------------------------

    def map(self, fn, items):  # pragma: no cover - contract documentation
        raise TypeError(
            "the sockets backend ships EngineTask envelopes (supports_tasks); "
            "scoring closures cannot cross a host boundary"
        )

    def _guarded_payloads(self, tasks: Iterable[EngineTask]):
        for task in tasks:
            payload = task.payload()
            check_task_payload(payload, self.max_task_bytes)
            yield payload

    def map_tasks(
        self, tasks: Iterable[EngineTask]
    ) -> list[tuple[list[float], int]]:
        """Score envelopes across the fleet, one ``(scores, ops)`` per task.

        Each envelope is serialized exactly once (the bytes are both
        the size guard's measurement and the shipped frame payload) and
        submitted as soon as it is produced, so the coordinator builds
        chunk ``k+1``'s statistics while workers score chunk ``k``.
        """
        return self.coordinator.map_tasks_payloads(self._guarded_payloads(tasks))

    def task_chunks(self, n_items: int) -> int:
        """Envelopes per batch (shared 2-per-worker pipeline policy)."""
        return default_task_chunks(n_items, self.coordinator.n_workers)

    # -- speculation plane ---------------------------------------------
    #
    # The engine's speculation scheduler submits *likely next*
    # envelopes ahead of the strategy's decision through these hooks;
    # they ride the same per-worker pipeline windows (and the same
    # reassignment/eviction machinery) as batch envelopes, keyed by
    # coordinator tickets.

    supports_speculation = True

    def submit_task(self, payload: bytes) -> int:
        """Submit one envelope without waiting for its result.

        Returns an opaque handle for ``wait_task``/``cancel_task``.
        The same wire-size guard as the batch path applies — an
        oversized speculative envelope is a configuration bug, not a
        reason to strain the network quietly.
        """
        check_task_payload(payload, self.max_task_bytes)
        return self.coordinator.submit_ticket(payload, speculative=True)

    def wait_task(self, handle: int) -> tuple[list[float], int] | None:
        """Block for a speculative result; ``None`` if it was lost
        (plane reset, cancellation) — the caller rescores normally."""
        return self.coordinator.wait_ticket(handle)

    def cancel_task(self, handle: int) -> None:
        """Best-effort cancel: queued envelopes never ship; in-flight
        ones have their results discarded on arrival."""
        self.coordinator.cancel_ticket(handle)

    # -- placement-aware sharding --------------------------------------

    def make_placed_cache(
        self,
        X: np.ndarray,
        block_kernel,
        normalize: bool,
        n_shards: int,
        placement: ShardPlacement | None = None,
    ) -> PlacedGramCache:
        """A Gram cache whose row strips live on this fleet's workers."""
        cache = PlacedGramCache(
            self.coordinator,
            X,
            block_kernel,
            normalize,
            n_shards=n_shards,
            placement=placement,
            replication=None if placement is not None else self.replication,
        )
        self._placed_caches.append(cache)
        return cache

    def make_placed_landmark_cache(
        self,
        X: np.ndarray,
        block_kernel,
        normalize: bool,
        n_shards: int,
        n_landmarks: int | None = None,
        landmark_seed: int = 0,
        placement: ShardPlacement | None = None,
    ) -> PlacedLandmarkGramCache:
        """A landmark (Nyström) factor cache resident on this fleet.

        Each worker builds and keeps the factor strips for the rows it
        owns; only the m×r whitening transform and O(m) vectors cross
        the wire (``factor_bytes_shipped`` in the wire ledger).  Factor
        strips are rebuilt on adoption rather than replicated, so the
        ``replication=`` knob does not apply to this layout.
        """
        cache = PlacedLandmarkGramCache(
            self.coordinator,
            X,
            block_kernel,
            normalize,
            n_shards=n_shards,
            n_landmarks=n_landmarks,
            landmark_seed=landmark_seed,
            placement=placement,
        )
        self._placed_caches.append(cache)
        return cache

    # -- accounting ----------------------------------------------------

    def wire_stats(self) -> dict[str, Any]:
        """Wire ledger: envelope/placement/resilience bytes plus strip
        residency, promotion, re-replication and rebuild counts."""
        stats = self.coordinator.wire_stats()
        resident = {}
        for cache in self._placed_caches:
            for worker, count in cache.resident_strip_bytes.items():
                resident[worker] = max(resident.get(worker, 0), count)
        stats["strip_bytes_resident"] = sum(resident.values())
        stats["strip_bytes_resident_max_worker"] = (
            max(resident.values()) if resident else 0
        )
        for counter in (
            "n_gathers",
            "n_promotions",
            "n_replicated_strips",
            "n_replication_failures",
            "n_strip_rebuilds",
            "n_rebalances",
            "n_rebalanced_strips",
        ):
            # getattr default: landmark caches adopt strips instead of
            # migrating them and carry no rebalance counters.
            stats[counter] = sum(
                getattr(cache, counter, 0) for cache in self._placed_caches
            )
        stats["factor_bytes_shipped"] = sum(
            getattr(cache, "factor_bytes_shipped", 0)
            for cache in self._placed_caches
        )
        return stats
