"""Length-prefixed TCP framing for the cluster transport.

One frame = a fixed header followed by an opaque payload::

    | magic ``RENG`` (4) | version (1) | type (1) | length (8, big-endian) |
    | payload (``length`` bytes)                                           |

The payload encoding is the sender's business (task frames carry the
pickled :class:`~repro.engine.tasks.EngineTask` bytes verbatim — the
same bytes the size guard measured; control frames carry pickled
dictionaries).  The framing layer's job is to make *transport* failures
loud and attributable:

* a frame whose magic or version bytes are wrong raises
  :class:`ProtocolError` immediately — the peer is not speaking this
  protocol (or the stream lost sync), and nothing after the bad header
  can be trusted;
* a declared length over ``max_frame_bytes`` raises
  :class:`ProtocolError` *before* any payload byte is read, so a
  malformed (or hostile) length field cannot make the receiver
  allocate unbounded memory;
* a connection that closes mid-frame raises :class:`ConnectionClosed`
  (a :class:`ProtocolError`), distinguishing "the worker died" — which
  the coordinator handles by reassigning work — from "the worker sent
  garbage", which it does not.

Security note: payloads are unpickled by the receiver, so workers must
only be exposed on trusted networks (the deployment model is a rack or
LAN of cooperating IoT aggregation nodes, not the open internet).
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any

__all__ = [
    "ProtocolError",
    "ConnectionClosed",
    "send_frame",
    "recv_frame",
    "dump_payload",
    "load_payload",
    "frame_overhead",
    "wire_category",
    "DEFAULT_MAX_FRAME_BYTES",
    "MSG_PING",
    "MSG_PONG",
    "MSG_TASK",
    "MSG_RESULT",
    "MSG_ERROR",
    "MSG_OK",
    "MSG_INIT",
    "MSG_TARGET",
    "MSG_BLOCK_RAW",
    "MSG_BLOCK_SCALE",
    "MSG_BLOCK_CENTER",
    "MSG_PAIR",
    "MSG_STRIPS_FETCH",
    "MSG_SHUTDOWN",
]

MAGIC = b"RENG"
VERSION = 1
_HEADER = struct.Struct("!4sBBQ")

#: Frames larger than this are rejected by default on both ends.  Large
#: enough for a placement INIT shipping a training sample; far below
#: anything that could exhaust a node.
DEFAULT_MAX_FRAME_BYTES = 256 * 1024 * 1024

# Control plane ---------------------------------------------------------
MSG_PING = 1
MSG_PONG = 2
MSG_ERROR = 3
MSG_OK = 4
MSG_SHUTDOWN = 5
# Task plane (pipelined; FIFO per connection) ---------------------------
MSG_TASK = 10
MSG_RESULT = 11
# Placement plane (request/reply; its own connection) -------------------
MSG_INIT = 20
MSG_TARGET = 21
MSG_BLOCK_RAW = 22
MSG_BLOCK_SCALE = 23
MSG_BLOCK_CENTER = 24
MSG_PAIR = 25
MSG_STRIPS_FETCH = 26

_KNOWN_TYPES = frozenset(
    {
        MSG_PING,
        MSG_PONG,
        MSG_ERROR,
        MSG_OK,
        MSG_SHUTDOWN,
        MSG_TASK,
        MSG_RESULT,
        MSG_INIT,
        MSG_TARGET,
        MSG_BLOCK_RAW,
        MSG_BLOCK_SCALE,
        MSG_BLOCK_CENTER,
        MSG_PAIR,
        MSG_STRIPS_FETCH,
    }
)

_TASK_TYPES = frozenset({MSG_TASK, MSG_RESULT})


class ProtocolError(RuntimeError):
    """The byte stream violates the framing contract (garbage, bad
    magic/version, unknown type, or an oversized declared length)."""


class ConnectionClosed(ProtocolError):
    """The peer closed the connection (cleanly between frames, or
    mid-frame — a truncated frame).  The coordinator treats this as a
    worker death and reassigns the worker's outstanding tasks."""


def frame_overhead() -> int:
    """Header bytes added to every payload on the wire."""
    return _HEADER.size


def wire_category(msg_type: int) -> str:
    """Accounting bucket of a message type.

    ``"envelope"`` — task envelopes and their results (the per-search
    scoring traffic the benchmarks record); ``"placement"`` — strip
    residency and statistic reductions; ``"control"`` — everything else.
    """
    if msg_type in _TASK_TYPES:
        return "envelope"
    if msg_type >= MSG_INIT:
        return "placement"
    return "control"


def dump_payload(obj: Any) -> bytes:
    """Pickle a control/placement payload (highest protocol)."""
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def load_payload(payload: bytes) -> Any:
    """Inverse of :func:`dump_payload`."""
    return pickle.loads(payload)


def send_frame(sock: socket.socket, msg_type: int, payload: bytes) -> int:
    """Write one frame; returns the bytes put on the wire."""
    if msg_type not in _KNOWN_TYPES:
        raise ProtocolError(f"unknown message type {msg_type!r}")
    header = _HEADER.pack(MAGIC, VERSION, msg_type, len(payload))
    sock.sendall(header + payload)
    return len(header) + len(payload)


def _recv_exact(sock: socket.socket, count: int, *, started: bool) -> bytes:
    """Read exactly ``count`` bytes or raise :class:`ConnectionClosed`.

    ``started`` marks whether part of a frame has already been read —
    EOF then means a *truncated* frame rather than a clean close.
    """
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if started or chunks:
                raise ConnectionClosed(
                    "connection closed mid-frame (truncated frame: "
                    f"expected {count} more bytes, got {count - remaining})"
                )
            raise ConnectionClosed("connection closed")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(
    sock: socket.socket, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> tuple[int, bytes, int]:
    """Read one frame; returns ``(msg_type, payload, wire_bytes)``.

    Raises :class:`ProtocolError` on garbage (bad magic/version,
    unknown type, oversized declared length — checked before a single
    payload byte is read) and :class:`ConnectionClosed` when the peer
    goes away.
    """
    header = _recv_exact(sock, _HEADER.size, started=False)
    magic, version, msg_type, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(
            f"bad frame magic {magic!r} (expected {MAGIC!r}): peer is not "
            "speaking the repro.cluster protocol or the stream lost sync"
        )
    if version != VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version} (speaking {VERSION})"
        )
    if msg_type not in _KNOWN_TYPES:
        raise ProtocolError(f"unknown message type {msg_type}")
    if length > max_frame_bytes:
        raise ProtocolError(
            f"declared frame length {length} exceeds the "
            f"{max_frame_bytes}-byte limit; rejecting before reading the "
            "payload"
        )
    payload = _recv_exact(sock, length, started=True) if length else b""
    return msg_type, payload, _HEADER.size + length
