"""Length-prefixed TCP framing for the cluster transport.

One frame = a fixed header followed by an opaque payload::

    | magic ``RENG`` (4) | version (1) | type (1) | length (8, big-endian) |
    | payload (``length`` bytes)                                           |

The payload encoding is the sender's business (task frames carry the
pickled :class:`~repro.engine.tasks.EngineTask` bytes verbatim — the
same bytes the size guard measured; control frames carry pickled
dictionaries).  The framing layer's job is to make *transport* failures
loud and attributable:

* a frame whose magic or version bytes are wrong raises
  :class:`ProtocolError` immediately — the peer is not speaking this
  protocol (or the stream lost sync), and nothing after the bad header
  can be trusted;
* a declared length over ``max_frame_bytes`` raises
  :class:`ProtocolError` *before* any payload byte is read, so a
  malformed (or hostile) length field cannot make the receiver
  allocate unbounded memory;
* a connection that closes mid-frame raises :class:`ConnectionClosed`
  (a :class:`ProtocolError`), distinguishing "the worker died" — which
  the coordinator handles by reassigning work — from "the worker sent
  garbage", which it does not.

Optional authentication: when both ends share a secret, every frame
carries an HMAC-SHA256 trailer after the header — an 8-byte
strictly-increasing per-connection nonce plus the 32-byte digest of
``header || nonce || payload`` — and the version byte sets
:data:`AUTH_FLAG`.  A tampered byte anywhere in the frame, a replayed
(non-increasing) nonce, or a plain frame arriving at an authenticated
endpoint raises :class:`AuthenticationError` loudly.  With auth *off*
the frame layout is byte-identical to the unauthenticated protocol —
zero overhead, zero format drift.

Security note: payloads are unpickled by the receiver, so workers must
only be exposed on trusted networks (the deployment model is a rack or
LAN of cooperating IoT aggregation nodes, not the open internet).  The
shared-secret HMAC authenticates and integrity-protects frames against
stray or misbehaving peers on that network; it is not transport
encryption.
"""

from __future__ import annotations

import hmac
import pickle
import socket
import struct
import threading
from typing import Any

__all__ = [
    "ProtocolError",
    "ConnectionClosed",
    "AuthenticationError",
    "FrameAuth",
    "encode_frame",
    "send_frame",
    "recv_frame",
    "dump_payload",
    "load_payload",
    "frame_overhead",
    "auth_overhead",
    "wire_category",
    "DEFAULT_MAX_FRAME_BYTES",
    "AUTH_FLAG",
    "MSG_PING",
    "MSG_PONG",
    "MSG_TASK",
    "MSG_RESULT",
    "MSG_ERROR",
    "MSG_OK",
    "MSG_INIT",
    "MSG_TARGET",
    "MSG_BLOCK_RAW",
    "MSG_BLOCK_SCALE",
    "MSG_BLOCK_CENTER",
    "MSG_PAIR",
    "MSG_STRIPS_FETCH",
    "MSG_STRIP_STATE",
    "MSG_STRIP_INSTALL",
    "MSG_STRIP_REBUILD",
    "MSG_LANDMARK_FACTOR",
    "MSG_LANDMARK_STATS",
    "MSG_LANDMARK_PAIR",
    "MSG_SERVE_INSTALL",
    "MSG_SERVE_ROWS",
    "MSG_SERVE_DROP",
    "MSG_SERVE_STATUS",
    "MSG_TELEMETRY",
    "MSG_JOIN",
    "MSG_JOIN_ACK",
    "SERVE_TYPES",
    "JOIN_TYPES",
    "MSG_SHUTDOWN",
]

MAGIC = b"RENG"
VERSION = 1
#: High bit of the version byte: the frame carries the HMAC trailer.
AUTH_FLAG = 0x80
_HEADER = struct.Struct("!4sBBQ")
#: Authentication trailer: 8-byte nonce + 32-byte HMAC-SHA256 digest.
_AUTH_TRAILER = struct.Struct("!Q32s")

#: Frames larger than this are rejected by default on both ends.  Large
#: enough for a placement INIT shipping a training sample; far below
#: anything that could exhaust a node.
DEFAULT_MAX_FRAME_BYTES = 256 * 1024 * 1024

# Control plane ---------------------------------------------------------
MSG_PING = 1
MSG_PONG = 2
MSG_ERROR = 3
MSG_OK = 4
MSG_SHUTDOWN = 5
# Task plane (pipelined; FIFO per connection) ---------------------------
MSG_TASK = 10
MSG_RESULT = 11
# Placement plane (request/reply; its own connection) -------------------
MSG_INIT = 20
MSG_TARGET = 21
MSG_BLOCK_RAW = 22
MSG_BLOCK_SCALE = 23
MSG_BLOCK_CENTER = 24
MSG_PAIR = 25
MSG_STRIPS_FETCH = 26
# Resilience plane (re-replication and explicit rebuild of strips) ------
MSG_STRIP_STATE = 27
MSG_STRIP_INSTALL = 28
MSG_STRIP_REBUILD = 29
# Landmark plane (Nyström factor strips; rides the placement bucket) ----
MSG_LANDMARK_FACTOR = 30
MSG_LANDMARK_STATS = 31
MSG_LANDMARK_PAIR = 32
# Serving plane (versioned model residency + per-request strip rows).
# Requests ride the pipelined task connections; a serve reply *echoes*
# the request's frame type (unlike placement's generic MSG_OK) so both
# directions land in the "serve" accounting bucket.
MSG_SERVE_INSTALL = 33
MSG_SERVE_ROWS = 34
MSG_SERVE_DROP = 35
MSG_SERVE_STATUS = 36
# Telemetry plane (request/reply; answered on any connection).  The
# reply echoes MSG_TELEMETRY so both directions land in the
# "telemetry" accounting bucket; the payload is the worker's
# metrics/span snapshot (see repro.cluster.status).
MSG_TELEMETRY = 37
# Membership plane (elastic fleets): the coordinator admits a revived
# or newly added worker by dialing it and sending MSG_JOIN; the worker
# answers MSG_JOIN_ACK with an announce snapshot (pid, resident strips,
# whether it still holds placement state).  The handshake rides the
# same per-worker links as migrated strip state, so both book in the
# "rebalance" accounting bucket.
MSG_JOIN = 38
MSG_JOIN_ACK = 39

#: Serving-plane request types (each is also its own reply type).
SERVE_TYPES = frozenset(
    {MSG_SERVE_INSTALL, MSG_SERVE_ROWS, MSG_SERVE_DROP, MSG_SERVE_STATUS}
)

#: Membership-plane types (the JOIN handshake, both directions).
JOIN_TYPES = frozenset({MSG_JOIN, MSG_JOIN_ACK})

_KNOWN_TYPES = frozenset(
    {
        MSG_PING,
        MSG_PONG,
        MSG_ERROR,
        MSG_OK,
        MSG_SHUTDOWN,
        MSG_TASK,
        MSG_RESULT,
        MSG_INIT,
        MSG_TARGET,
        MSG_BLOCK_RAW,
        MSG_BLOCK_SCALE,
        MSG_BLOCK_CENTER,
        MSG_PAIR,
        MSG_STRIPS_FETCH,
        MSG_STRIP_STATE,
        MSG_STRIP_INSTALL,
        MSG_STRIP_REBUILD,
        MSG_LANDMARK_FACTOR,
        MSG_LANDMARK_STATS,
        MSG_LANDMARK_PAIR,
        MSG_SERVE_INSTALL,
        MSG_SERVE_ROWS,
        MSG_SERVE_DROP,
        MSG_SERVE_STATUS,
        MSG_TELEMETRY,
        MSG_JOIN,
        MSG_JOIN_ACK,
    }
)

_TASK_TYPES = frozenset({MSG_TASK, MSG_RESULT})


class ProtocolError(RuntimeError):
    """The byte stream violates the framing contract (garbage, bad
    magic/version, unknown type, or an oversized declared length)."""


class ConnectionClosed(ProtocolError):
    """The peer closed the connection (cleanly between frames, or
    mid-frame — a truncated frame).  The coordinator treats this as a
    worker death and reassigns the worker's outstanding tasks."""


class AuthenticationError(ProtocolError):
    """An authenticated endpoint rejected a frame: missing auth trailer,
    digest mismatch (any tampered byte), or a replayed/stale nonce."""


class FrameAuth:
    """Per-connection frame authenticator over a shared secret.

    One instance guards one connection: the send nonce is a
    strictly-increasing counter, and the receive side accepts only
    nonces larger than the last one seen — so a captured frame replayed
    on the same connection is rejected.  Create a fresh instance per
    connection (nonces are per-stream state, not per-secret state).
    """

    def __init__(self, secret: str | bytes):
        if isinstance(secret, str):
            secret = secret.encode("utf-8")
        if not secret:
            raise ValueError("the shared secret must be non-empty")
        self._key = bytes(secret)
        self._send_nonce = 0
        self._recv_nonce = 0
        self._lock = threading.Lock()

    def next_nonce(self) -> int:
        with self._lock:
            self._send_nonce += 1
            return self._send_nonce

    def digest(self, header: bytes, nonce: int, payload: bytes) -> bytes:
        message = header + struct.pack("!Q", nonce) + payload
        return hmac.new(self._key, message, "sha256").digest()

    def verify(self, header: bytes, nonce: int, digest: bytes, payload: bytes) -> None:
        """Check digest then nonce; raise :class:`AuthenticationError`."""
        expected = self.digest(header, nonce, payload)
        if not hmac.compare_digest(expected, digest):
            raise AuthenticationError(
                "frame HMAC digest mismatch: the frame was tampered with in "
                "transit or the peers' shared secrets differ"
            )
        with self._lock:
            if nonce <= self._recv_nonce:
                raise AuthenticationError(
                    f"replayed or stale frame nonce {nonce} (last accepted "
                    f"{self._recv_nonce}); frames must arrive with strictly "
                    "increasing nonces"
                )
            self._recv_nonce = nonce


def frame_overhead() -> int:
    """Header bytes added to every payload on the wire."""
    return _HEADER.size


def auth_overhead() -> int:
    """Extra wire bytes per frame when shared-secret auth is on."""
    return _AUTH_TRAILER.size


def wire_category(msg_type: int) -> str:
    """Accounting bucket of a message type.

    ``"envelope"`` — task envelopes and their results (the per-search
    scoring traffic the benchmarks record); ``"serve"`` — serving-plane
    model installs and per-request row traffic (requests *and* their
    echoed-type replies); ``"telemetry"`` — fleet introspection polls
    and their echoed-type snapshot replies; ``"rebalance"`` — the JOIN
    membership handshake (migrated strip state rides per-link bucket
    overrides into the same bucket); ``"placement"`` — strip residency
    and statistic reductions; ``"control"`` — everything else.
    """
    if msg_type in _TASK_TYPES:
        return "envelope"
    if msg_type in SERVE_TYPES:
        return "serve"
    if msg_type == MSG_TELEMETRY:
        return "telemetry"
    if msg_type in JOIN_TYPES:
        return "rebalance"
    if msg_type >= MSG_INIT:
        return "placement"
    return "control"


def dump_payload(obj: Any) -> bytes:
    """Pickle a control/placement payload (highest protocol)."""
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def load_payload(payload: bytes) -> Any:
    """Inverse of :func:`dump_payload`."""
    return pickle.loads(payload)


def encode_frame(
    msg_type: int, payload: bytes, auth: FrameAuth | None = None
) -> bytes:
    """Serialise one frame; with ``auth`` the HMAC trailer is appended
    after the header and :data:`AUTH_FLAG` is set on the version byte.
    Auth off produces the exact unauthenticated byte layout."""
    if msg_type not in _KNOWN_TYPES:
        raise ProtocolError(f"unknown message type {msg_type!r}")
    if auth is None:
        return _HEADER.pack(MAGIC, VERSION, msg_type, len(payload)) + payload
    header = _HEADER.pack(MAGIC, VERSION | AUTH_FLAG, msg_type, len(payload))
    nonce = auth.next_nonce()
    digest = auth.digest(header, nonce, payload)
    return header + _AUTH_TRAILER.pack(nonce, digest) + payload


def send_frame(
    sock: socket.socket,
    msg_type: int,
    payload: bytes,
    auth: FrameAuth | None = None,
) -> int:
    """Write one frame; returns the bytes put on the wire."""
    frame = encode_frame(msg_type, payload, auth)
    sock.sendall(frame)
    return len(frame)


def _recv_exact(sock: socket.socket, count: int, *, started: bool) -> bytes:
    """Read exactly ``count`` bytes or raise :class:`ConnectionClosed`.

    ``started`` marks whether part of a frame has already been read —
    EOF then means a *truncated* frame rather than a clean close.
    """
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if started or chunks:
                raise ConnectionClosed(
                    "connection closed mid-frame (truncated frame: "
                    f"expected {count} more bytes, got {count - remaining})"
                )
            raise ConnectionClosed("connection closed")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(
    sock: socket.socket,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    auth: FrameAuth | None = None,
) -> tuple[int, bytes, int]:
    """Read one frame; returns ``(msg_type, payload, wire_bytes)``.

    Raises :class:`ProtocolError` on garbage (bad magic/version,
    unknown type, oversized declared length — checked before a single
    payload byte is read), :class:`AuthenticationError` when ``auth``
    is set and the frame is unauthenticated, tampered with, or
    replayed, and :class:`ConnectionClosed` when the peer goes away.
    """
    header = _recv_exact(sock, _HEADER.size, started=False)
    magic, version, msg_type, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(
            f"bad frame magic {magic!r} (expected {MAGIC!r}): peer is not "
            "speaking the repro.cluster protocol or the stream lost sync"
        )
    authenticated = bool(version & AUTH_FLAG)
    if version & ~AUTH_FLAG != VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version & ~AUTH_FLAG} "
            f"(speaking {VERSION})"
        )
    if auth is not None and not authenticated:
        raise AuthenticationError(
            "unauthenticated frame rejected: this endpoint requires "
            "shared-secret HMAC authentication on every frame"
        )
    if auth is None and authenticated:
        raise ProtocolError(
            "peer sent an authenticated frame but this endpoint has no "
            "shared secret configured"
        )
    if msg_type not in _KNOWN_TYPES:
        raise ProtocolError(f"unknown message type {msg_type}")
    if length > max_frame_bytes:
        raise ProtocolError(
            f"declared frame length {length} exceeds the "
            f"{max_frame_bytes}-byte limit; rejecting before reading the "
            "payload"
        )
    trailer = b""
    nonce = digest = None
    if authenticated:
        trailer = _recv_exact(sock, _AUTH_TRAILER.size, started=True)
        nonce, digest = _AUTH_TRAILER.unpack(trailer)
    payload = _recv_exact(sock, length, started=True) if length else b""
    if auth is not None:
        auth.verify(header, nonce, digest, payload)
    return msg_type, payload, _HEADER.size + len(trailer) + length
