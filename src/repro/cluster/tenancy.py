"""Multi-tenant scheduling: many searches, one worker fleet.

The PR-5/PR-7 ticket plane multiplexes batch, speculative and pinned
request traffic over per-worker pipeline windows; this module
generalises it to *tenants* so that several concurrent
``PartitionMKLSearch`` / ``FacetedLearner`` runs (and the facets within
one learner) share a single fleet as a service instead of owning it per
search:

* :class:`TenantState` — one tenant's slice of the coordinator's ticket
  plane: its fair-share weight, its own real/speculative ticket queues,
  an admission bound on queued depth, and per-tenant ledgers (tasks,
  results, reassignments, rejections, envelope wire bytes).
* :class:`TenantScheduler` — deterministic `stride scheduling
  <https://dl.acm.org/doi/10.5555/1267638.1267639>`_ over the
  backlogged tenants: each tenant carries a *pass* value advanced by
  ``STRIDE_SCALE / weight`` per envelope it ships, and the next
  envelope always comes from the backlogged tenant with the lowest
  pass (name-ordered tie break).  Throughput shares converge to the
  weight ratios with bounded lag and no tenant starves — both proven
  as hypothesis properties in ``tests/test_tenancy.py``.
* :class:`TenantBackend` — a view over a shared
  :class:`~repro.cluster.backend.SocketBackend` satisfying the same
  ``supports_tasks`` / ``supports_speculation`` contract, so an engine
  handed a tenant view schedules through that tenant's queue, books
  wire bytes to that tenant's ledger, and builds placed caches in that
  tenant's worker-side namespace.  Obtained from
  ``SocketBackend.for_tenant(name, weight=...)``.
* :exc:`TenantAdmissionError` — raised when a tenant submits past its
  ``max_queue_depth`` admission bound (speculative submissions are
  born lost instead of raising: the engine rescores lost speculations
  by design).

Isolation guarantees (pinned down in ``tests/test_tenancy.py`` and the
tenancy rows of ``tests/test_cluster_faults.py``): a failing batch —
worker crash storm, eviction, :class:`~repro.cluster.placement.StripLossError`
— resets only the failing tenant's queued and in-flight tickets, never
another tenant's; each tenant's placed strips live in their own
worker-side namespace, so two tenants' caches on one fleet never
clobber each other's resident state.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable
from typing import Any

__all__ = [
    "DEFAULT_TENANT",
    "STRIDE_SCALE",
    "TenantAdmissionError",
    "TenantBackend",
    "TenantScheduler",
    "TenantState",
]

#: The tenant every untagged submission belongs to.  Always registered,
#: weight 1, unbounded — single-tenant coordinators behave exactly as
#: before tenancy existed.
DEFAULT_TENANT = "default"

#: Stride numerator.  Large so that integer-ish weights give distinct
#: float strides without precision loss (pass values stay far below
#: float53 for any realistic run length).
STRIDE_SCALE = 1 << 20


class TenantAdmissionError(RuntimeError):
    """A tenant's queued-ticket depth hit its admission bound.

    Raised on *real* (batch) submissions only; speculative submissions
    over the bound return a born-lost ticket instead, because the
    speculation scheduler already treats lost tickets as "rescore
    normally".
    """


class TenantState:
    """One tenant's slice of the coordinator ticket plane.

    Everything here is guarded by the coordinator's plane lock; the
    class itself holds no lock.
    """

    def __init__(
        self,
        name: str,
        weight: float = 1.0,
        max_queue_depth: int | None = None,
    ):
        if not name:
            raise ValueError("tenant name must be non-empty")
        weight = float(weight)
        if not weight > 0:
            raise ValueError(f"tenant weight must be > 0, got {weight}")
        if max_queue_depth is not None and int(max_queue_depth) < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        self.name = str(name)
        self.weight = weight
        self.max_queue_depth = (
            None if max_queue_depth is None else int(max_queue_depth)
        )
        #: Stride-scheduler virtual time; advanced by
        #: ``STRIDE_SCALE / weight`` per envelope shipped.
        self.pass_value = 0.0
        #: Queued (not yet shipped) real / speculative tickets.
        self.real: deque[int] = deque()
        self.spec: deque[int] = deque()
        #: In-flight tickets (shipped, result not yet consumed).
        self.in_flight: set[int] = set()
        # Per-tenant ledger (cumulative over the tenant's lifetime; the
        # engine snapshots and reports deltas exactly as for the fleet
        # ledger).
        self.n_tasks = 0
        self.n_results = 0
        self.n_reassigned = 0
        self.n_speculative_tasks = 0
        self.n_rejected = 0
        self.n_resets = 0
        self.envelope_bytes_out = 0
        self.envelope_bytes_in = 0

    @property
    def queued(self) -> int:
        """Tickets admitted but not yet shipped to a worker."""
        return len(self.real) + len(self.spec)

    @property
    def depth(self) -> int:
        """Queued plus in-flight — this tenant's share of the backlog."""
        return self.queued + len(self.in_flight)

    def backlogged(self) -> bool:
        return bool(self.real or self.spec)

    def admit(self, speculative: bool) -> bool:
        """Check the admission bound for one submission.

        Returns ``True`` to enqueue.  Over the bound: speculative
        submissions return ``False`` (caller issues a born-lost
        ticket), real ones raise :exc:`TenantAdmissionError`.
        """
        if self.max_queue_depth is None or self.queued < self.max_queue_depth:
            return True
        self.n_rejected += 1
        if speculative:
            return False
        raise TenantAdmissionError(
            f"tenant {self.name!r} queue is full "
            f"({self.queued}/{self.max_queue_depth} queued tickets)"
        )

    def ledger(self) -> dict[str, Any]:
        """This tenant's scheduling/wire ledger (flat counter dict)."""
        return {
            "weight": self.weight,
            "queue_depth": self.depth,
            "n_tasks": self.n_tasks,
            "n_results": self.n_results,
            "n_reassigned": self.n_reassigned,
            "n_speculative_tasks": self.n_speculative_tasks,
            "n_rejected": self.n_rejected,
            "n_resets": self.n_resets,
            "envelope_bytes_out": self.envelope_bytes_out,
            "envelope_bytes_in": self.envelope_bytes_in,
        }


class TenantScheduler:
    """Deterministic weighted fair queueing over named tenants.

    Classic stride scheduling: each tenant carries a *pass* value; the
    next envelope ships from the backlogged tenant with the minimum
    ``(pass, name)`` (the name breaks ties deterministically), whose
    pass then advances by ``STRIDE_SCALE / weight``.  Over any interval
    where a set of tenants stays backlogged, tenant *i*'s share of
    shipped envelopes converges to ``w_i / sum(w)`` with absolute lag
    bounded by the tenant count, and the gap between consecutive grants
    to a backlogged tenant is bounded — no starvation under any weight
    assignment (``tests/test_tenancy.py`` holds both properties under
    hypothesis-generated adversarial weights).

    The scheduler is pure bookkeeping (no locks, no I/O); the
    coordinator drives it under its plane lock.
    """

    def __init__(self):
        self._tenants: dict[str, TenantState] = {}
        self.register(DEFAULT_TENANT)

    # -- registry ------------------------------------------------------

    def register(
        self,
        name: str,
        weight: float = 1.0,
        max_queue_depth: int | None = None,
    ) -> TenantState:
        """Register (or re-configure) a tenant; idempotent by name.

        Re-registering keeps the tenant's queues and ledgers and
        updates its weight/bound — a second ``for_tenant`` view of the
        same tenant is a reconfiguration, not a new queue.
        """
        state = self._tenants.get(name)
        if state is not None:
            fresh = TenantState(name, weight, max_queue_depth)  # validate
            state.weight = fresh.weight
            state.max_queue_depth = fresh.max_queue_depth
            return state
        state = TenantState(name, weight, max_queue_depth)
        # A newcomer starts at the minimum live pass so it neither
        # monopolises the fleet (pass 0 after others ran for a while)
        # nor waits for the field to catch up.
        if self._tenants:
            state.pass_value = min(
                t.pass_value for t in self._tenants.values()
            )
        self._tenants[name] = state
        return state

    def unregister(self, name: str) -> None:
        """Drop a tenant's state (ledgers included); unknown is a no-op."""
        if name == DEFAULT_TENANT:
            raise ValueError("the default tenant cannot be unregistered")
        self._tenants.pop(name, None)

    def state(self, name: str | None) -> TenantState:
        """The named tenant's state (``None`` → the default tenant)."""
        key = DEFAULT_TENANT if name is None else name
        try:
            return self._tenants[key]
        except KeyError:
            raise KeyError(
                f"unknown tenant {key!r}; register it first "
                "(SocketBackend.for_tenant / Coordinator.register_tenant)"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._tenants)

    def states(self) -> list[TenantState]:
        return [self._tenants[name] for name in sorted(self._tenants)]

    # -- scheduling ----------------------------------------------------

    def backlogged(self) -> list[TenantState]:
        """Tenants with queued tickets, in deterministic name order."""
        return [s for s in self.states() if s.backlogged()]

    def select(
        self, candidates: Iterable[TenantState] | None = None
    ) -> TenantState | None:
        """The tenant the next envelope should come from (no charge).

        ``candidates`` defaults to the backlogged tenants; ``None`` is
        returned when nothing is backlogged.  Selection does not
        advance the pass — call :meth:`charge` when the envelope
        actually ships, so discarded (cancelled) tickets cost no share.
        """
        pool = list(self.backlogged() if candidates is None else candidates)
        if not pool:
            return None
        return min(pool, key=lambda s: (s.pass_value, s.name))

    def charge(self, state: TenantState) -> None:
        """Advance a tenant's pass for one shipped envelope."""
        state.pass_value += STRIDE_SCALE / state.weight

    def queue_depths(self) -> dict[str, int]:
        """Tenant name → queued + in-flight tickets (for status polls)."""
        return {s.name: s.depth for s in self.states()}

    def ledgers(self) -> dict[str, dict[str, Any]]:
        """Tenant name → flat ledger dict (for metrics absorption)."""
        return {s.name: s.ledger() for s in self.states()}


class TenantBackend:
    """One tenant's view of a shared :class:`SocketBackend`.

    Satisfies the engine's backend contract (``supports_tasks``,
    ``supports_speculation``, ``map_tasks``, ``submit_task`` /
    ``wait_task`` / ``cancel_task``, ``task_chunks``, ``warm_up``,
    ``close``, ``wire_stats``, ``make_placed_cache`` /
    ``make_placed_landmark_cache``), so
    ``KernelEvaluationEngine(backend=view)`` — or the ``tenant=``
    convenience on the engine/search/learner — runs an ordinary search
    whose envelopes ride this tenant's fair-share queue, whose wire
    ledger is this tenant's traffic only, and whose placed strips live
    in this tenant's worker-side namespace (two tenants' caches on one
    fleet coexist instead of clobbering a global placement slot).

    ``close()`` detaches the placed caches this view created and keeps
    the tenant registered (its ledgers outlive the view, exactly like
    the fleet ledger outlives a search); the parent backend's lifetime
    is the caller's to manage.
    """

    supports_tasks = True
    supports_speculation = True

    def __init__(self, parent, tenant: str):
        self.parent = parent
        self.tenant = str(tenant)
        self.name = f"{parent.name}:{self.tenant}"
        self.coordinator = parent.coordinator
        self._placed_caches: list[Any] = []

    # -- passthroughs --------------------------------------------------

    def warm_up(self) -> None:
        self.parent.warm_up()

    def task_chunks(self, n_items: int) -> int:
        return self.parent.task_chunks(n_items)

    def map(self, fn, items):  # pragma: no cover - contract documentation
        return self.parent.map(fn, items)

    # -- task plane ----------------------------------------------------

    def map_tasks(self, tasks) -> list[tuple[list[float], int]]:
        """Score envelopes through this tenant's fair-share queue."""
        return self.coordinator.map_tasks_payloads(
            self.parent._guarded_payloads(tasks), tenant=self.tenant
        )

    def submit_task(self, payload: bytes) -> int:
        from repro.engine.tasks import check_task_payload

        check_task_payload(payload, self.parent.max_task_bytes)
        return self.coordinator.submit_ticket(
            payload, speculative=True, tenant=self.tenant
        )

    def wait_task(self, handle: int):
        return self.coordinator.wait_ticket(handle)

    def cancel_task(self, handle: int) -> None:
        self.coordinator.cancel_ticket(handle)

    # -- placement-aware sharding --------------------------------------

    @property
    def namespace(self) -> str:
        """Worker-side placement namespace for this tenant's strips."""
        return f"tenant:{self.tenant}"

    def make_placed_cache(
        self, X, block_kernel, normalize, n_shards, placement=None
    ):
        from repro.cluster.placement import PlacedGramCache

        cache = PlacedGramCache(
            self.coordinator,
            X,
            block_kernel,
            normalize,
            n_shards=n_shards,
            placement=placement,
            replication=None if placement is not None else self.parent.replication,
            namespace=self.namespace,
        )
        self._placed_caches.append(cache)
        return cache

    def make_placed_landmark_cache(
        self,
        X,
        block_kernel,
        normalize,
        n_shards,
        n_landmarks=None,
        landmark_seed=0,
        placement=None,
    ):
        from repro.cluster.placement import PlacedLandmarkGramCache

        cache = PlacedLandmarkGramCache(
            self.coordinator,
            X,
            block_kernel,
            normalize,
            n_shards=n_shards,
            n_landmarks=n_landmarks,
            landmark_seed=landmark_seed,
            placement=placement,
            namespace=self.namespace,
        )
        self._placed_caches.append(cache)
        return cache

    # -- accounting ----------------------------------------------------

    def wire_stats(self) -> dict[str, Any]:
        """This tenant's wire ledger: its envelope traffic and its own
        placed-cache counters, plus the fleet gauges — the same shape
        the engine diffs for ``SearchResult.wire``, restricted to this
        tenant's share."""
        stats = self.coordinator.tenant_wire_stats(self.tenant)
        resident = {}
        for cache in self._placed_caches:
            for worker, count in cache.resident_strip_bytes.items():
                resident[worker] = max(resident.get(worker, 0), count)
        stats["strip_bytes_resident"] = sum(resident.values())
        stats["strip_bytes_resident_max_worker"] = (
            max(resident.values()) if resident else 0
        )
        for counter in (
            "n_gathers",
            "n_promotions",
            "n_replicated_strips",
            "n_replication_failures",
            "n_strip_rebuilds",
            "n_rebalances",
            "n_rebalanced_strips",
        ):
            stats[counter] = sum(
                getattr(cache, counter, 0) for cache in self._placed_caches
            )
        stats["factor_bytes_shipped"] = sum(
            getattr(cache, "factor_bytes_shipped", 0)
            for cache in self._placed_caches
        )
        return stats

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Detach this view's placed caches; the tenant registration
        (and its ledgers) survive on the coordinator, and the parent
        backend keeps running for its other tenants."""
        for cache in self._placed_caches:
            detach = getattr(cache, "detach", None)
            if detach is not None:
                detach()
        self._placed_caches.clear()

    def shutdown_workers(self) -> None:  # pragma: no cover - passthrough
        self.parent.shutdown_workers()
