"""Placement-aware sharding: workers hold row strips end-to-end.

The in-process :class:`~repro.engine.cache.ShardedGramCache` proved
the layout (per-shard row strips, rank-1 centred target, strip-wise
scalar reductions) but kept every strip in one address space.  This
module moves strip *ownership* onto the cluster workers:

* :class:`ShardPlacement` maps each strip index to the ordered set of
  workers **holding** it — a primary owner plus ``replication - 1``
  replicas (round-robin by default, or seeded from an explicit
  primary assignment);
* :class:`PlacedGramCache` / :class:`PlacedBlockStatsCache` are the
  coordinator-side facades with the same surface as the sharded
  caches (``strips`` are replaced by ownership; ``block_stats`` /
  ``pair_inner`` / ``partition_stats`` / ``target_norm`` are
  identical), orchestrating the per-block reduction over the
  placement plane of a :class:`~repro.cluster.coordinator.Coordinator`.

What crosses the wire per block is three O(n)-vector round trips
(raw-diagonal → scale, row-mean segments → global row means, then the
per-strip scalar statistics) and per *pair* a single scalar round trip
— the strips themselves are built and stay **resident worker-side**,
never re-shipped per task.  The one-time ``MSG_INIT`` ships the
training sample to each worker, standing in for data that a real IoT
deployment already has on the node that owns those rows.

Failure model (the cluster-resilience subsystem):

* every holder of a strip builds (and keeps) its copy during the
  block fan-outs, so with ``replication >= 2`` a strip owner's death
  costs nothing but a **promotion**: the next live holder becomes the
  primary, reductions continue from its bit-identical copy, and the
  search result — scores, op ledger, ``n_gathers == 0`` — is unchanged
  (no fresh-cache rebuild);
* a promotion leaves the strip *degraded* (fewer than ``replication``
  live holders), so a background **re-replicator** copies the built
  strips from a live holder to a survivor over dedicated replication
  connections (``MSG_STRIP_STATE`` → ``MSG_STRIP_INSTALL``), restoring
  the factor; the copied bytes are the ``replication_bytes_*`` ledger;
* ``replication=1`` keeps no replicas by explicit choice, so a dead
  owner's strips are *lost*; the next placement operation performs the
  **explicit rebuild fallback** — warn, adopt the lost row slices on a
  survivor, and rebuild the built blocks' strips there from the stored
  scale/row statistics (``MSG_STRIP_REBUILD``, counted in
  ``n_strip_rebuilds``).  This is the loud successor of the silent
  fresh-cache rebuild PR 3 required;
* when *every* holder of a strip is gone and replicas were requested,
  :class:`StripLossError` (a
  :class:`~repro.engine.tasks.WorkerCrashError`) is raised — resident
  state cannot be silently recomputed when the caller paid for
  redundancy and lost it.

Numerical contract: every reduction happens in the same order and with
the same expressions as ``ShardedBlockStatsCache`` and always reads
the **primary** holder's scalars, so the values — and therefore every
score — are **bit-identical** to an in-process sharded run with the
same ``n_shards``, before and after promotions (replica copies are
built by the same code on the same float64 inputs).  The op ledger
keeps the same logical schedule (2 target passes, 3 per block, 1 per
pair; ``n_gram_computations`` one per block), and ``n_gathers`` counts
the deliberate full-Gram assemblies (final-model training only): a
search keeps it at zero.
"""

from __future__ import annotations

import hashlib
import math
import threading
import warnings
from collections import deque
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.cluster.protocol import (
    MSG_BLOCK_CENTER,
    MSG_BLOCK_RAW,
    MSG_BLOCK_SCALE,
    MSG_INIT,
    MSG_LANDMARK_FACTOR,
    MSG_LANDMARK_PAIR,
    MSG_LANDMARK_STATS,
    MSG_PAIR,
    MSG_STRIP_INSTALL,
    MSG_STRIP_REBUILD,
    MSG_STRIP_STATE,
    MSG_STRIPS_FETCH,
    MSG_TARGET,
    ProtocolError,
    dump_payload,
    load_payload,
)
from repro.combinatorics.partitions import SetPartition
from repro.engine.cache import (
    _KeyLocked,
    _PartitionStatsMixin,
    canonical_block_key,
    default_n_landmarks,
    landmark_transform,
    select_landmarks,
    shard_row_slices,
)
from repro.engine.tasks import WorkerCrashError
from repro.kernels.base import as_2d
from repro.kernels.partition_kernel import BlockKernelFactory, default_block_kernel
from repro.telemetry import get_tracer

__all__ = [
    "ShardPlacement",
    "PlacedGramCache",
    "PlacedBlockStatsCache",
    "PlacedLandmarkGramCache",
    "PlacedLandmarkStatsCache",
    "StripLossError",
    "StripMove",
    "MovementPlan",
    "rendezvous_owners",
]

BlockKey = tuple[int, ...]


def _rendezvous_score(strip: int, worker: int) -> int:
    """Deterministic rendezvous (HRW) weight of a (strip, worker) pair.

    SHA-1 of the pair, *not* Python's ``hash()``: every process that
    ranks workers for a strip — the coordinator today, a test asserting
    movement bounds, a future coordinator restarted over the same fleet
    — must produce the identical ranking, and ``hash()`` is randomised
    per interpreter.
    """
    digest = hashlib.sha1(b"%d:%d" % (strip, worker)).digest()
    return int.from_bytes(digest[:8], "big")


def _rendezvous_ranking(strip: int, workers: Sequence[int]) -> list[int]:
    """Workers ordered by descending rendezvous preference for a strip."""
    return sorted(workers, key=lambda w: (-_rendezvous_score(strip, w), w))


def rendezvous_owners(n_shards: int, workers: Sequence[int]) -> list[int]:
    """Bounded-load rendezvous assignment of strip primaries.

    Each strip prefers workers by its private rendezvous ranking, and
    strips are assigned in index order to their most-preferred worker
    that still has capacity (``ceil(n_shards / n_workers)`` primaries
    per worker).  The capacity bound keeps the load balanced; the
    rendezvous ranking keeps membership changes *local*: a worker's
    removal strands only the strips it owned, and a worker's addition
    attracts only the strips that rank it first among the survivors'
    overflow — the property :meth:`ShardPlacement.rebalance` turns into
    a provably minimal movement plan.
    """
    workers = sorted({int(w) for w in workers})
    if not workers:
        raise ValueError("at least one worker is required")
    if any(w < 0 for w in workers):
        raise ValueError("worker indices must be non-negative")
    capacity = math.ceil(n_shards / len(workers))
    load = {w: 0 for w in workers}
    owners: list[int] = []
    for strip in range(n_shards):
        for worker in _rendezvous_ranking(strip, workers):
            if load[worker] < capacity:
                owners.append(worker)
                load[worker] += 1
                break
    return owners


@dataclass(frozen=True)
class StripMove:
    """One planned primary movement: copy ``strip`` from ``source``
    (``None`` when every holder is already gone) and make ``target``
    its new primary."""

    strip: int
    source: int | None
    target: int


@dataclass(frozen=True)
class MovementPlan:
    """A minimal-movement rebalance plan (see
    :meth:`ShardPlacement.rebalance`).

    ``workers`` is the target fleet, ``capacity`` the per-worker
    primary bound the plan enforces, and ``moves`` the strips whose
    primaries change — everything else stays exactly where it is.
    """

    workers: tuple[int, ...]
    capacity: int
    moves: tuple[StripMove, ...]

    @property
    def n_moves(self) -> int:
        return len(self.moves)

    @property
    def moved_strips(self) -> tuple[int, ...]:
        return tuple(move.strip for move in self.moves)


class StripLossError(WorkerCrashError):
    """Every holder of a replicated strip died before re-replication
    could restore a copy — the resident state is gone and the search
    cannot continue without recomputation the caller did not opt into
    (``replication=1`` opts into the explicit rebuild fallback)."""


class ShardPlacement:
    """Assignment of strip indices to the workers holding them.

    ``holders_of(s)`` is the ordered tuple of workers with strip ``s``
    resident; the first is the **primary** (``owners[s]``) whose
    scalars every reduction reads.  Each strip starts with
    ``replication`` holders — the primary (round-robin by default, or
    the explicit ``owners`` assignment) plus the next distinct workers
    in index order — so ``replication - 1`` deaths are survivable per
    strip without losing resident state.

    The placement is *mutable*: :meth:`drop_worker` removes a dead
    worker everywhere (promoting replicas where it was primary) and
    :meth:`add_holder` publishes a re-replicated or rebuilt copy.
    """

    def __init__(
        self,
        n_shards: int,
        n_workers: int,
        owners: Sequence[int] | None = None,
        replication: int | None = None,
    ):
        if n_shards < 1:
            raise ValueError("n_shards must be positive")
        if n_workers < 1:
            raise ValueError("n_workers must be positive")
        if replication is None:
            replication = min(2, n_workers)
        if not 1 <= replication <= n_workers:
            raise ValueError(
                f"replication must be in [1, n_workers={n_workers}], "
                f"got {replication}"
            )
        if owners is None:
            owners = [s % n_workers for s in range(n_shards)]
        owners = [int(o) for o in owners]
        if len(owners) != n_shards:
            raise ValueError(
                f"owners must assign all {n_shards} strips, got {len(owners)}"
            )
        if any(o < 0 or o >= n_workers for o in owners):
            raise ValueError("strip owner index outside the worker fleet")
        self.n_shards = int(n_shards)
        self.n_workers = int(n_workers)
        self.replication = int(replication)
        self._holders: list[list[int]] = []
        for primary in owners:
            holders = [primary]
            step = 1
            while len(holders) < self.replication:
                candidate = (primary + step) % n_workers
                if candidate not in holders:
                    holders.append(candidate)
                step += 1
            self._holders.append(holders)

    @property
    def owners(self) -> tuple[int | None, ...]:
        """Primary holder per strip (``None`` for a lost strip)."""
        return tuple(h[0] if h else None for h in self._holders)

    def holders_of(self, strip: int) -> tuple[int, ...]:
        """Workers holding the strip, primary first."""
        return tuple(self._holders[strip])

    def strips_of(self, worker_index: int) -> tuple[int, ...]:
        """Strip indices the worker holds (primary or replica)."""
        return tuple(
            s
            for s, holders in enumerate(self._holders)
            if worker_index in holders
        )

    @property
    def active_workers(self) -> tuple[int, ...]:
        """Workers holding at least one strip, in index order."""
        active: set[int] = set()
        for holders in self._holders:
            active.update(holders)
        return tuple(sorted(active))

    def drop_worker(self, worker_index: int) -> dict:
        """Remove a dead worker from every holder list.

        Returns ``{"promoted": {strip: new_primary}, "lost": (strips
        with no holder left,), "degraded": (strips still held but below
        the replication factor,)}``.  Idempotent: dropping a worker
        that holds nothing returns empty results.
        """
        promoted: dict[int, int] = {}
        lost: list[int] = []
        degraded: list[int] = []
        for s, holders in enumerate(self._holders):
            if worker_index not in holders:
                continue
            was_primary = holders[0] == worker_index
            holders.remove(worker_index)
            if not holders:
                lost.append(s)
            else:
                degraded.append(s)
                if was_primary:
                    promoted[s] = holders[0]
        return {
            "promoted": promoted,
            "lost": tuple(lost),
            "degraded": tuple(degraded),
        }

    def add_holder(self, strip: int, worker_index: int) -> None:
        """Publish a new holder (re-replication or rebuild adopted it)."""
        holders = self._holders[strip]
        if worker_index not in holders:
            holders.append(int(worker_index))

    def promote_holder(self, strip: int, worker_index: int) -> None:
        """Make an existing holder the strip's primary (a completed
        migration flips ownership only once the copy is resident)."""
        holders = self._holders[strip]
        if worker_index not in holders:
            raise ValueError(
                f"worker {worker_index} does not hold strip {strip}; "
                "install the strip (add_holder) before promoting"
            )
        holders.remove(worker_index)
        holders.insert(0, int(worker_index))

    def grow_fleet(self, n_workers: int) -> None:
        """Raise the registered fleet size (new workers hold nothing
        until a rebalance moves strips onto them)."""
        if n_workers < self.n_workers:
            raise ValueError(
                f"cannot shrink the fleet from {self.n_workers} to "
                f"{n_workers} workers; rebalance away from a worker "
                "instead of unregistering it"
            )
        self.n_workers = int(n_workers)

    @classmethod
    def rendezvous(
        cls,
        n_shards: int,
        n_workers: int,
        replication: int | None = None,
    ) -> "ShardPlacement":
        """A placement whose primaries follow the bounded-load
        rendezvous assignment (:func:`rendezvous_owners`) — the layout
        whose membership changes :meth:`rebalance` keeps minimal."""
        return cls(
            n_shards,
            n_workers,
            owners=rendezvous_owners(n_shards, range(n_workers)),
            replication=replication,
        )

    def primary_load(self) -> dict[int, int]:
        """Primaries per worker (workers owning nothing are absent)."""
        load: dict[int, int] = {}
        for holders in self._holders:
            if holders:
                load[holders[0]] = load.get(holders[0], 0) + 1
        return load

    def rebalance(self, workers: Sequence[int]) -> MovementPlan:
        """Plan a minimal-movement primary rebalance onto ``workers``.

        Keep-first: a strip stays with its current primary whenever
        that primary is in the target fleet and under the capacity
        bound ``ceil(n_shards / len(workers))``.  Only orphaned strips
        (primary dead, departed, or lost) and the over-capacity
        overflow move — each to its most-preferred under-capacity
        worker by rendezvous ranking.  Movement bounds (``S`` strips,
        balanced rendezvous start):

        * remove one of ``n`` workers → only its own strips move:
          at most ``ceil(S / n)``;
        * add a worker to ``n`` → only the overflow above the new
          capacity moves: at most ``ceil(S / n) + n`` in the worst
          ceiling case, ~``S / (n + 1)`` typically;
        * unchanged membership on a balanced placement → an empty plan
          (rebalance is idempotent).

        The plan is *advice*: nothing is mutated here.  The executor
        copies each moved strip to its target, then calls
        :meth:`add_holder` + :meth:`promote_holder` to flip ownership.
        """
        targets = sorted({int(w) for w in workers})
        if not targets:
            raise ValueError("cannot rebalance onto an empty worker set")
        if any(w < 0 or w >= self.n_workers for w in targets):
            raise ValueError("rebalance target outside the worker fleet")
        capacity = math.ceil(self.n_shards / len(targets))
        allowed = set(targets)
        load = {w: 0 for w in targets}
        pending: list[int] = []
        owners = self.owners
        for strip, owner in enumerate(owners):
            if owner in allowed and load[owner] < capacity:
                load[owner] += 1
            else:
                pending.append(strip)
        moves: list[StripMove] = []
        for strip in pending:
            for worker in _rendezvous_ranking(strip, targets):
                if load[worker] < capacity:
                    load[worker] += 1
                    moves.append(
                        StripMove(
                            strip=strip, source=owners[strip], target=worker
                        )
                    )
                    break
        return MovementPlan(
            workers=tuple(targets), capacity=capacity, moves=tuple(moves)
        )


class PlacedGramCache(_KeyLocked):
    """Coordinator-side facade over worker-resident Gram strips.

    Same ledger surface as :class:`~repro.engine.cache.ShardedGramCache`
    (``n_gram_computations``, ``n_gathers``, ``row_slices``,
    ``max_strip_rows``, ``stats_cache``); the strips themselves live on
    the holding workers.  ``gram()`` — the one deliberate full-matrix
    assembly, for final-model training — fetches every strip once and
    counts a gather.

    On construction the cache registers itself as a death listener on
    the coordinator: a detected worker death immediately drops the
    worker from the placement (promoting replicas) and queues the
    degraded strips for background re-replication.
    """

    #: Fan-out rounds attempted before declaring the placement
    #: unreachable (each round re-targets the updated holder set).
    MAX_FANOUT_ATTEMPTS = 4
    #: Re-replication attempts per degraded strip before giving up
    #: (the strip stays readable from its surviving holders).
    MAX_REPLICATION_ATTEMPTS = 3

    def __init__(
        self,
        coordinator,
        X: np.ndarray,
        block_kernel: BlockKernelFactory = default_block_kernel,
        normalize: bool = True,
        n_shards: int = 2,
        placement: ShardPlacement | None = None,
        replication: int | None = None,
        namespace: str = "default",
    ):
        super().__init__()
        self.coordinator = coordinator
        # Worker-side placement residency is keyed by namespace, so two
        # caches (two tenants, or a tenant next to the default plane)
        # sharing the fleet never clobber each other's strips.  Every
        # placement frame this cache sends carries the namespace.
        self.namespace = str(namespace)
        self.X = as_2d(X)
        n = self.X.shape[0]
        if not 1 <= n_shards <= n:
            raise ValueError(
                f"n_shards must be in [1, n_samples={n}], got {n_shards}"
            )
        if placement is not None and replication is not None:
            raise ValueError("pass either placement or replication, not both")
        self.block_kernel = block_kernel
        self.normalize = normalize
        self.n_shards = int(n_shards)
        self.placement = placement or ShardPlacement(
            self.n_shards, coordinator.n_workers, replication=replication
        )
        if self.placement.n_shards != self.n_shards:
            raise ValueError("placement does not cover n_shards strips")
        self.row_slices = shard_row_slices(n, self.n_shards)
        self._initialised = False
        self._initialised_workers: set[int] = set()
        # Per block: the global row-mean vector and grand mean of the
        # (normalised) strips — the O(n) reduction centring needs —
        # plus the scale vector, kept so late-adopting holders (and the
        # replication=1 rebuild) can reproduce the strips exactly.
        self._row_stats: dict[BlockKey, tuple[np.ndarray, float]] = {}
        self._block_scale: dict[BlockKey, np.ndarray | None] = {}
        # Resilience state: guarded by _data_lock, mutated by the death
        # listener (any thread) and the re-replicator.  Lock order:
        # coordinator plane locks before _data_lock, never the reverse
        # — so no network I/O ever happens while _data_lock is held.
        self._data_lock = threading.RLock()
        self._lost_strips: set[int] = set()
        self._repl_queue: deque[int] = deque()
        self._repl_attempts: dict[int, int] = {}
        self._repl_thread: threading.Thread | None = None
        self._target_body: dict | None = None
        self._target_workers: set[int] = set()
        self._rebuild_warned = False
        self.n_gram_computations = 0
        self.n_gathers = 0
        self.n_promotions = 0
        self.n_replicated_strips = 0
        self.n_replication_failures = 0
        self.n_strip_rebuilds = 0
        self.n_rebalances = 0
        self.n_rebalanced_strips = 0
        self.resident_strip_bytes: dict[int, int] = {}
        coordinator.add_death_listener(self._on_worker_death)
        coordinator.add_join_listener(self._on_worker_join)
        # A reused coordinator may already know some workers are dead —
        # and it notifies each death only once per worker life, so a
        # cache built afterwards must fold the standing deaths into its
        # placement now or it would wait forever on dead primaries.
        for index in range(coordinator.n_workers):
            if coordinator.worker_is_dead(index):
                self._on_worker_death(index)

    def detach(self) -> None:
        """Unhook this cache from the coordinator's death notifications.

        Called when the search that owned the cache is over: a reused
        backend keeps serving other searches, and a stale cache must
        not keep promoting placements or shipping strip copies for
        results nobody will read.  Idempotent.
        """
        self.coordinator.remove_death_listener(self._on_worker_death)
        self.coordinator.remove_join_listener(self._on_worker_join)
        with self._data_lock:
            self._repl_queue.clear()

    @property
    def max_strip_rows(self) -> int:
        """Largest row count any one strip (hence worker block) holds."""
        return max(sl.stop - sl.start for sl in self.row_slices)

    # -- death handling -------------------------------------------------

    def _on_worker_death(self, worker_index: int) -> None:
        """Coordinator death listener: promote replicas, queue repairs.

        Bookkeeping only (no network I/O — listeners may run under the
        coordinator's plane locks): the placement is updated so the
        very next reduction reads the promoted holders, and degraded
        strips are queued for the background re-replicator.
        """
        with self._data_lock:
            outcome = self.placement.drop_worker(worker_index)
            self.n_promotions += len(outcome["promoted"])
            self._lost_strips.update(outcome["lost"])
            self._initialised_workers.discard(worker_index)
            self._target_workers.discard(worker_index)
            # A dead node's strips are gone; leaving its last reported
            # residency in the ledger would overstate the evidence.
            self.resident_strip_bytes.pop(worker_index, None)
            repair = [
                s for s in outcome["degraded"] if s not in self._repl_queue
            ]
            self._repl_queue.extend(repair)
            should_kick = bool(repair) and self.placement.replication > 1
        tracer = get_tracer()
        if tracer.enabled and outcome["promoted"]:
            tracer.event(
                "placement.promote",
                cat="placement",
                worker=worker_index,
                promoted=dict(outcome["promoted"]),
            )
        if should_kick:
            self._kick_replicator()

    def _live_holders(self, strip: int) -> list[int]:
        """Live workers holding the strip (caller holds ``_data_lock``)."""
        return [
            w
            for w in self.placement.holders_of(strip)
            if not self.coordinator.worker_is_dead(w)
        ]

    # -- placement-plane orchestration ---------------------------------

    def _request(self, worker: int, msg_type: int, body: dict) -> dict:
        reply = self.coordinator.placement_request(
            worker, msg_type, dump_payload({**body, "ns": self.namespace})
        )
        return load_payload(reply)

    def _fan_out(
        self, msg_type: int, body: dict
    ) -> tuple[dict[int, dict], tuple[int, ...]]:
        """One request to every live strip holder, computed concurrently.

        All requests go out before any reply is awaited
        (:meth:`~repro.cluster.coordinator.Coordinator.placement_fan_out`),
        so per-strip O(n²) work overlaps across the fleet; the replies
        are then reduced coordinator-side in strip order regardless of
        completion order, keeping the sums bit-identical.

        Holder deaths during the fan-out run the death listener (the
        placement is promoted in place), the round is re-targeted at
        the updated holder set, and the replayed requests answer from
        resident state (the worker handlers are idempotent).  Only when
        no round can reach a live holder for every strip does the
        fan-out raise — :class:`StripLossError` for lost resident
        state, :class:`~repro.engine.tasks.WorkerCrashError` when the
        whole fleet is gone.

        Returns ``(replies, owners)`` — the owner snapshot validated
        against these replies, so reductions index a consistent view
        even if another death lands right after the fan-out.
        """
        payload = dump_payload({**body, "ns": self.namespace})
        for _ in range(self.MAX_FANOUT_ATTEMPTS):
            self._repair_lost_strips()
            with self._data_lock:
                targets = [
                    w
                    for w in self.placement.active_workers
                    if not self.coordinator.worker_is_dead(w)
                ]
            if not targets:
                raise WorkerCrashError(
                    "no live strip holders remain in the placement"
                )
            with get_tracer().span(
                "placement.fan_out",
                cat="placement",
                msg_type=msg_type,
                n_targets=len(targets),
            ):
                raw = self.coordinator.placement_fan_out(
                    targets, msg_type, payload
                )
            replies = {w: load_payload(r) for w, r in raw.items()}
            with self._data_lock:
                owners = self.placement.owners
            if all(o is not None and o in replies for o in owners):
                return replies, owners
        raise WorkerCrashError(
            "placement fan-out could not reach a live holder for every "
            f"strip after {self.MAX_FANOUT_ATTEMPTS} rounds"
        )

    def ensure_init(self) -> None:
        """Ship each holding worker its ownership state once (idempotent).

        A holder that died before (or while) being initialised is
        recorded dead — promoting its strips — and skipped; coverage is
        enforced by the fan-outs that follow.
        """
        with self._key_lock("__init__"):
            if self._initialised:
                return
            with self._data_lock:
                workers = list(self.placement.active_workers)
            for worker in workers:
                if self.coordinator.worker_is_dead(worker):
                    continue
                self._init_worker(worker, self._request)
            self._initialised = True

    def _init_worker(self, worker: int, requester) -> bool:
        """Send MSG_INIT (once) to a worker; False if it died."""
        with self._data_lock:
            if worker in self._initialised_workers:
                return True
            slices = {
                s: self.row_slices[s] for s in self.placement.strips_of(worker)
            }
        try:
            requester(
                worker,
                MSG_INIT,
                {
                    "X": self.X,
                    "block_kernel": self.block_kernel,
                    "normalize": self.normalize,
                    "slices": slices,
                },
            )
        except (ProtocolError, OSError):
            return False
        with self._data_lock:
            self._initialised_workers.add(worker)
        return True

    def ship_target(self, centered_y: np.ndarray) -> None:
        """Ship the centred target to every live holder (idempotent).

        The payload is remembered so late adopters (re-replication
        targets, rebuild survivors) receive it too — every holder must
        be able to answer ``MSG_BLOCK_CENTER`` statistics.
        """
        with self._key_lock("__target__"):
            if self._target_body is not None:
                return
            self.ensure_init()
            body = {"centered_y": centered_y}
            with self._data_lock:
                workers = list(self.placement.active_workers)
            shipped: set[int] = set()
            for worker in workers:
                if self.coordinator.worker_is_dead(worker):
                    continue
                try:
                    self._request(worker, MSG_TARGET, body)
                except (ProtocolError, OSError):
                    continue
                shipped.add(worker)
            with self._data_lock:
                self._target_body = body
                self._target_workers |= shipped

    def _ship_target_to(self, worker: int, requester) -> None:
        """Forward the remembered target payload to a late adopter."""
        with self._data_lock:
            body = self._target_body
            if body is None or worker in self._target_workers:
                return
        requester(worker, MSG_TARGET, body)
        with self._data_lock:
            self._target_workers.add(worker)

    def gram_cached(self, block: Sequence[int]) -> bool:
        """True if the block's strips are already built fleet-side."""
        return canonical_block_key(block) in self._row_stats

    def ensure_strips(self, block: Sequence[int]) -> tuple[np.ndarray, float]:
        """Build (normalise) a block's strips on every holder, once.

        Returns the block's global row means and grand mean — the O(n)
        reduction the stats cache needs for centring.  Reduction order
        matches ``ShardedGramCache`` exactly: diagonal segments and
        row-mean segments are concatenated in strip order, always from
        the primary holder's reply.
        """
        key = canonical_block_key(block)
        cached = self._row_stats.get(key)
        if cached is not None:
            return cached
        with self._key_lock(("strips", key)):
            if key not in self._row_stats:
                self.ensure_init()
                raw, owners = self._fan_out(MSG_BLOCK_RAW, {"key": key})
                scale = None
                if self.normalize:
                    diagonal = np.concatenate(
                        [raw[owners[s]]["diag"][s] for s in range(self.n_shards)]
                    )
                    scale = np.sqrt(np.clip(diagonal, 1e-12, None))
                scaled, owners = self._fan_out(
                    MSG_BLOCK_SCALE, {"key": key, "scale": scale}
                )
                row_means = np.concatenate(
                    [
                        scaled[owners[s]]["row_means"][s]
                        for s in range(self.n_shards)
                    ]
                )
                grand_mean = float(row_means.mean())
                with self._lock:
                    self.n_gram_computations += 1
                    self._block_scale[key] = scale
                    self._row_stats[key] = (row_means, grand_mean)
        return self._row_stats[key]

    # -- resilience: repair paths --------------------------------------

    def _repair_lost_strips(self) -> None:
        """Handle strips whose every holder died.

        ``replication=1`` opted out of redundancy, so the fallback is
        explicit and loud: warn once, adopt the lost row slices on the
        survivor with the fewest strips, and rebuild the already-built
        blocks there from the stored scale/row statistics.  With
        replicas requested, lost resident state is a hard error.
        """
        with self._data_lock:
            lost = sorted(self._lost_strips)
            replication = self.placement.replication
        if not lost:
            return
        if replication > 1:
            raise StripLossError(
                f"every holder of strip{'s' if len(lost) > 1 else ''} "
                f"{lost} died before re-replication could restore a copy "
                f"(replication={replication}); the resident strips are "
                "gone — restart the search with a fresh cache or more "
                "workers"
            )
        if not self._rebuild_warned:
            self._rebuild_warned = True
            warnings.warn(
                "a dead strip owner with replication=1 forces an explicit "
                f"rebuild of strip{'s' if len(lost) > 1 else ''} {lost} on a "
                "surviving worker; set replication>=2 to recover from "
                "replicas instead",
                RuntimeWarning,
                stacklevel=2,
            )
        for strip in lost:
            self._rebuild_strip(strip)

    def _repair_candidates(self, strip: int) -> list[int]:
        """Live workers not holding the strip, least-loaded first (the
        shared target order of both repair paths; caller holds
        ``_data_lock``)."""
        return sorted(
            (
                w
                for w in self.coordinator.live_worker_indices()
                if w not in self.placement.holders_of(strip)
            ),
            key=lambda w: (len(self.placement.strips_of(w)), w),
        )

    def _rebuild_strip(self, strip: int) -> None:
        """The ``replication=1`` fallback: recompute a lost strip."""
        with self._data_lock:
            candidates = self._repair_candidates(strip)
            blocks = {
                key: {
                    "scale": self._block_scale.get(key),
                    "row_means": row_means,
                    "grand_mean": grand_mean,
                }
                for key, (row_means, grand_mean) in self._row_stats.items()
            }
        for target in candidates:
            if not self._init_worker(target, self._request):
                continue
            try:
                self._ship_target_to(target, self._request)
                self._request(
                    target,
                    MSG_STRIP_REBUILD,
                    {
                        "slices": {strip: self.row_slices[strip]},
                        "blocks": blocks,
                    },
                )
            except (ProtocolError, OSError):
                continue
            with self._data_lock:
                self.placement.add_holder(strip, target)
                self._lost_strips.discard(strip)
                self.n_strip_rebuilds += 1
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(
                    "placement.rebuild_strip",
                    cat="placement",
                    strip=strip,
                    target=target,
                )
            return
        raise WorkerCrashError(
            f"no surviving worker could rebuild lost strip {strip}"
        )

    def _kick_replicator(self) -> None:
        """Start the background re-replication thread if not running."""
        with self._data_lock:
            if self._repl_thread is not None and self._repl_thread.is_alive():
                return
            self._repl_thread = threading.Thread(
                target=self._replication_loop,
                name="strip-replicator",
                daemon=True,
            )
            self._repl_thread.start()

    def wait_replication(self, timeout: float | None = 30.0) -> bool:
        """Block until background re-replication settles (tests, benches)."""
        while True:
            with self._data_lock:
                thread = self._repl_thread
            if thread is None or not thread.is_alive():
                return True
            thread.join(timeout=timeout)
            if thread.is_alive():
                return False

    def _replication_loop(self) -> None:
        while True:
            with self._data_lock:
                if not self._repl_queue:
                    self._repl_thread = None
                    return
                strip = self._repl_queue.popleft()
            try:
                self._replicate_strip(strip)
            except Exception as error:
                # Transport faults (the source or target died mid-copy;
                # their deaths are already recorded) and application
                # errors (RemoteTaskError from a worker-side handler)
                # alike must not kill the replicator thread.  Retry a
                # bounded number of times; a strip that cannot be
                # re-replicated stays readable from its live holders —
                # but say so: silently staying degraded would turn the
                # next holder death into a surprise StripLossError.
                with self._data_lock:
                    attempts = self._repl_attempts.get(strip, 0) + 1
                    self._repl_attempts[strip] = attempts
                    retry = attempts < self.MAX_REPLICATION_ATTEMPTS
                    if retry:
                        self._repl_queue.append(strip)
                    else:
                        self.n_replication_failures += 1
                if not retry:
                    warnings.warn(
                        f"re-replication of strip {strip} gave up after "
                        f"{attempts} attempts ({error}); the strip stays "
                        "degraded on its surviving holders",
                        RuntimeWarning,
                        stacklevel=2,
                    )

    def _replicate_strip(self, strip: int) -> None:
        """Copy a degraded strip's resident state to a survivor.

        The copy travels coordinator-side over the dedicated
        replication connections (fetch from a live holder, install on
        the target) **one block per frame**, so a long search's resident
        state can never exceed the frame-size limit in a single
        message.  The target is published as a holder after the first
        full pass, then a second sweep copies any blocks built while
        the first was in flight — blocks built after publication reach
        the target through the ordinary fan-outs.
        """
        request = self.coordinator.replication_request
        with self._data_lock:
            holders = self._live_holders(strip)
            if not holders or len(holders) >= self.placement.replication:
                return
            source = holders[0]
            candidates = self._repair_candidates(strip)
            if not candidates:
                return
            target = candidates[0]

        def replication_requester(worker, msg_type, body):
            return load_payload(
                request(
                    worker,
                    msg_type,
                    dump_payload({**body, "ns": self.namespace}),
                )
            )

        def copy_blocks(keys) -> None:
            for key in keys:
                state = replication_requester(
                    source, MSG_STRIP_STATE, {"strips": [strip], "keys": [key]}
                )
                replication_requester(
                    target,
                    MSG_STRIP_INSTALL,
                    {
                        "slices": state["slices"],
                        "scaled": state["scaled"],
                        "centered": state["centered"],
                    },
                )

        if not self._init_worker(target, replication_requester):
            raise ProtocolError(f"replication target {target} died during init")
        self._ship_target_to(target, replication_requester)
        listing = replication_requester(
            source, MSG_STRIP_STATE, {"strips": [strip], "keys": []}
        )
        replication_requester(
            target,
            MSG_STRIP_INSTALL,
            {"slices": listing["slices"], "scaled": {}, "centered": {}},
        )
        installed = {tuple(key) for key in listing["built"]}
        copy_blocks(sorted(installed))
        with self._data_lock:
            self.placement.add_holder(strip, target)
            self.n_replicated_strips += 1
            self._repl_attempts.pop(strip, None)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "placement.replicate",
                cat="placement",
                strip=strip,
                source=source,
                target=target,
            )
        # Second sweep: blocks built while the first pass was copying.
        relisting = replication_requester(
            source, MSG_STRIP_STATE, {"strips": [strip], "keys": []}
        )
        copy_blocks(
            sorted({tuple(key) for key in relisting["built"]} - installed)
        )
        with self._data_lock:
            # One pass restores one holder; with replication > 2 (or
            # deaths that landed while the queue entry was pending) the
            # strip may still be below factor — requeue it so the loop
            # keeps going instead of silently staying degraded.
            if (
                len(self._live_holders(strip)) < self.placement.replication
                and strip not in self._repl_queue
            ):
                self._repl_queue.append(strip)

    # -- elasticity: rejoin and rebalance ------------------------------

    def _on_worker_join(self, worker_index: int, announce: dict) -> None:
        """Coordinator join listener: re-adopt strips onto the admitted
        worker.

        Runs on the admitting thread *outside* the coordinator's plane
        locks (unlike the death listener), so it may perform placement
        I/O: the revived or newly added worker is woven back into the
        placement by a minimal-movement rebalance over the live fleet,
        migrating its strips' resident state over the rebalance links.
        A revived worker is a fresh process — its announce reports no
        placement state — so nothing it previously held is trusted.
        """
        with self._data_lock:
            if worker_index >= self.placement.n_workers:
                self.placement.grow_fleet(worker_index + 1)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "placement.worker_join",
                cat="placement",
                worker=worker_index,
                announced_strips=list(announce.get("strips", [])),
            )
        self.rebalance()

    def rebalance(self, workers: Sequence[int] | None = None) -> MovementPlan:
        """Plan and execute a minimal-movement primary rebalance.

        Plans over the live fleet (or an explicit worker set), migrates
        each moved strip's resident state to its new primary over the
        coordinator's dedicated rebalance links (one block per frame —
        the re-replication wire discipline — every byte booked in the
        ``rebalance`` bucket), and flips the primary only once the copy
        is fully resident.  In-flight scoring keeps reading the old
        primary until the flip, and the copied strips are bit-identical
        to the originals, so reductions — and therefore every score —
        are unchanged before, during, and after the rebalance.
        """
        with self._data_lock:
            if workers is None:
                workers = list(self.coordinator.live_worker_indices())
            if workers and max(workers) >= self.placement.n_workers:
                self.placement.grow_fleet(max(workers) + 1)
            plan = self.placement.rebalance(workers)
        with get_tracer().span(
            "placement.rebalance",
            cat="placement",
            n_moves=plan.n_moves,
            n_workers=len(plan.workers),
        ):
            for move in plan.moves:
                try:
                    self._migrate_strip(move)
                except (ProtocolError, OSError) as error:
                    # The source or target died mid-copy; its death is
                    # already recorded and the placement untouched for
                    # this strip — the ordinary repair paths own it now.
                    warnings.warn(
                        f"migration of strip {move.strip} to worker "
                        f"{move.target} failed ({error}); the strip stays "
                        "with its current holders",
                        RuntimeWarning,
                        stacklevel=2,
                    )
        with self._data_lock:
            self.n_rebalances += 1
            # A rejoin often follows a death that left strips degraded
            # (sole-holder) after the repair loop ran out of targets.
            # With fresh capacity in the fleet those strips are
            # repairable again — requeue them so a later death of the
            # surviving holder is survivable, not a StripLossError.
            should_kick = False
            if self.placement.replication > 1:
                repair = [
                    strip
                    for strip in range(self.placement.n_shards)
                    if len(self._live_holders(strip))
                    < self.placement.replication
                    and strip not in self._repl_queue
                    and strip not in self._lost_strips
                ]
                self._repl_queue.extend(repair)
                should_kick = bool(repair)
        if should_kick:
            self._kick_replicator()
        return plan

    def _migrate_strip(self, move: StripMove) -> None:
        """Execute one planned movement: copy, publish, promote.

        Same wire discipline as :meth:`_replicate_strip` — list the
        source's built blocks, install the slice, copy one block per
        frame, publish the target as a holder (so fan-outs reach it and
        self-heal anything still missing), sweep blocks built while the
        first pass was in flight, then promote the target to primary.
        The old primary stays on as a replica; it is not torn down.
        """
        strip, target = move.strip, move.target
        with self._data_lock:
            holders = self._live_holders(strip)
            if target in holders:
                # Already resident (the target held a replica): flipping
                # the primary is the entire move — zero bytes shipped.
                self.placement.promote_holder(strip, target)
                self.n_rebalanced_strips += 1
                return
            if not holders:
                # Every holder is gone: there is nothing to copy.  The
                # repair paths (rebuild with replication=1, loud
                # StripLossError otherwise) own lost strips.
                return
            source = holders[0]
        request = self.coordinator.rebalance_request

        def rebalance_requester(worker, msg_type, body):
            return load_payload(
                request(
                    worker,
                    msg_type,
                    dump_payload({**body, "ns": self.namespace}),
                )
            )

        def copy_blocks(keys) -> None:
            for key in keys:
                state = rebalance_requester(
                    source, MSG_STRIP_STATE, {"strips": [strip], "keys": [key]}
                )
                rebalance_requester(
                    target,
                    MSG_STRIP_INSTALL,
                    {
                        "slices": state["slices"],
                        "scaled": state["scaled"],
                        "centered": state["centered"],
                    },
                )

        if not self._init_worker(target, rebalance_requester):
            raise ProtocolError(f"migration target {target} died during init")
        self._ship_target_to(target, rebalance_requester)
        listing = rebalance_requester(
            source, MSG_STRIP_STATE, {"strips": [strip], "keys": []}
        )
        rebalance_requester(
            target,
            MSG_STRIP_INSTALL,
            {"slices": listing["slices"], "scaled": {}, "centered": {}},
        )
        installed = {tuple(key) for key in listing["built"]}
        copy_blocks(sorted(installed))
        with self._data_lock:
            self.placement.add_holder(strip, target)
        # Second sweep: blocks built while the first pass was copying.
        # Blocks built after the add_holder publication reach the target
        # through the ordinary (self-healing) fan-outs.
        relisting = rebalance_requester(
            source, MSG_STRIP_STATE, {"strips": [strip], "keys": []}
        )
        copy_blocks(
            sorted({tuple(key) for key in relisting["built"]} - installed)
        )
        with self._data_lock:
            self.placement.promote_holder(strip, target)
            self.n_rebalanced_strips += 1
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "placement.migrate",
                cat="placement",
                strip=strip,
                source=source,
                target=target,
            )

    # -- GramCache surface ---------------------------------------------

    def gram(self, block: Sequence[int]) -> np.ndarray:
        """Gather the full Gram from the workers' resident strips.

        The one deliberate materialisation point (final-model training,
        reference checks); never called on the incremental scoring
        path, and ``n_gathers`` counts every use.
        """
        key = canonical_block_key(block)
        self.ensure_strips(key)
        fetched, owners = self._fan_out(MSG_STRIPS_FETCH, {"key": key})
        try:
            strips = [
                fetched[owners[s]]["strips"][s] for s in range(self.n_shards)
            ]
        except KeyError:
            # A promotion handed a strip to a holder that adopted it
            # after this block was built: re-run the (idempotent) scale
            # fan-out so it self-heals the missing strip, then refetch.
            self._fan_out(
                MSG_BLOCK_SCALE,
                {"key": key, "scale": self._block_scale.get(key)},
            )
            fetched, owners = self._fan_out(MSG_STRIPS_FETCH, {"key": key})
            strips = [
                fetched[owners[s]]["strips"][s] for s in range(self.n_shards)
            ]
        with self._lock:
            self.n_gathers += 1
        return np.vstack(strips)

    def grams_for(self, partition: SetPartition) -> list[np.ndarray]:
        """Gathered per-block Grams (counts one gather per block)."""
        return [self.gram(block) for block in partition.blocks]

    def stats_cache(self, y: np.ndarray) -> "PlacedBlockStatsCache":
        """The statistics cache matching this placed layout."""
        return PlacedBlockStatsCache(self, y)


class PlacedBlockStatsCache(_KeyLocked, _PartitionStatsMixin):
    """Centred-Gram scalars reduced across worker-resident strips.

    Scalar surface identical to
    :class:`~repro.engine.cache.ShardedBlockStatsCache`; the per-strip
    partial statistics are computed by the strip's primary holder and
    summed coordinator-side **in strip order**, which keeps every value
    bit-identical to the in-process sharded cache — including after a
    holder death promotes a replica (the replica built its copy with
    the same code on the same inputs).
    """

    def __init__(self, grams: PlacedGramCache, y: np.ndarray):
        super().__init__()
        self.grams = grams
        y = np.asarray(y, dtype=float).ravel()
        if y.shape[0] != self.grams.X.shape[0]:
            raise ValueError("y length must match the cached sample")
        self.y = y
        self._target_inner: dict[BlockKey, float] = {}
        self._pair_inner: dict[tuple[BlockKey, BlockKey], float] = {}
        self._centered_keys: set[BlockKey] = set()
        # Rank-1 centred target, exactly as the sharded cache: its
        # statistics are O(n) and stay coordinator-side.
        self.centered_y = y - y.mean()
        self.target_norm = float(self.centered_y @ self.centered_y)
        # Ledger parity with the dense cache's two target passes.
        self.n_matrix_ops = 2

    def _pair_stats_keys(self):
        return self._centered_keys

    def _ensure_target(self) -> None:
        self.grams.ship_target(self.centered_y)

    def _center_fan_out(
        self, key: BlockKey
    ) -> tuple[dict[int, dict], tuple[int, ...]]:
        """The centring fan-out for one block (idempotent on workers).

        Carries the stored scale alongside the row statistics so a
        holder that adopted the strip mid-block (re-replication racing
        a build) can self-heal by rebuilding the scaled strip exactly.
        """
        row_means, grand_mean = self.grams.ensure_strips(key)
        return self.grams._fan_out(
            MSG_BLOCK_CENTER,
            {
                "key": key,
                "row_means": row_means,
                "grand_mean": grand_mean,
                "scale": self.grams._block_scale.get(key),
            },
        )

    def block_stats(self, block: Sequence[int]) -> tuple[float, float]:
        """``(a_i, M_ii)`` reduced across the primary holders."""
        key = canonical_block_key(block)
        if key not in self._centered_keys:
            with self._key_lock(("block", key)):
                if key not in self._centered_keys:
                    self._ensure_target()
                    replies, owners = self._center_fan_out(key)
                    target_inner = float(
                        sum(
                            replies[owners[s]]["stats"][s][0]
                            for s in range(self.grams.n_shards)
                        )
                    )
                    self_inner = float(
                        sum(
                            replies[owners[s]]["stats"][s][1]
                            for s in range(self.grams.n_shards)
                        )
                    )
                    for worker, reply in replies.items():
                        self.grams.resident_strip_bytes[worker] = int(
                            reply["resident_bytes"]
                        )
                    with self._lock:
                        self._target_inner[key] = target_inner
                        self._pair_inner[(key, key)] = self_inner
                        self.n_matrix_ops += 3
                        self._centered_keys.add(key)
        return self._target_inner[key], self._pair_inner[(key, key)]

    def _reduce_pair(self, key: tuple[BlockKey, BlockKey]) -> float:
        replies, owners = self.grams._fan_out(
            MSG_PAIR, {"key": key[0], "other": key[1]}
        )
        return float(
            sum(
                replies[owners[s]]["inners"][s]
                for s in range(self.grams.n_shards)
            )
        )

    def pair_inner(self, first: Sequence[int], second: Sequence[int]) -> float:
        """``M_ij`` as a strip-order sum of primary-holder strip inners."""
        key = tuple(
            sorted((canonical_block_key(first), canonical_block_key(second)))
        )
        value = self._pair_inner.get(key)
        if value is not None:
            return value
        self.block_stats(key[0])
        self.block_stats(key[1])
        if key[0] == key[1]:
            return self._pair_inner[key]
        with self._key_lock(("pair", key)):
            if key not in self._pair_inner:
                try:
                    value = self._reduce_pair(key)
                except KeyError:
                    # A promotion handed the primary role to a holder
                    # that adopted the strip after these blocks were
                    # centred: re-run the (idempotent) centring
                    # fan-outs so it self-heals, then reduce again.
                    self._center_fan_out(key[0])
                    self._center_fan_out(key[1])
                    value = self._reduce_pair(key)
                with self._lock:
                    self._pair_inner[key] = value
                    self.n_matrix_ops += 1
        return self._pair_inner[key]


class PlacedLandmarkGramCache(_KeyLocked):
    """Coordinator-side facade over worker-resident Nyström factor strips.

    The placed twin of
    :class:`~repro.engine.cache.ShardedLandmarkGramCache`: each worker
    holds the factor strips ``k(X[rows], X[L]) @ T`` for the row slices
    it owns, and only the m×r whitening transform ``T`` (computed once
    per block coordinator-side from the O(m²) landmark Gram), O(m)
    vectors and O(1) scalars ever cross the wire — booked in
    ``factor_bytes_shipped`` on top of the ordinary placement-plane
    byte ledger.  ``n_gathers`` stays at zero for a whole search: no
    n×n matrix, and no n×r factor, is ever assembled coordinator-side.

    Failure model: factor strips are **rebuilt, never replicated** —
    at O(n·m/shards) a strip costs less to recompute than to copy, so
    the placement always runs with ``replication=1`` and a dead owner's
    strips are adopted by a survivor (``MSG_STRIP_INSTALL`` publishes
    the row slices; the self-healing landmark handlers rebuild the
    strips from the transform carried by the very next fan-out).
    Adoptions are counted in ``n_strip_rebuilds``.

    Ledger contract matches the in-process landmark caches:
    ``n_gram_computations`` and the stats cache's ``n_matrix_ops`` stay
    0 forever; ``n_factor_computations`` counts per-block factor
    builds; reductions are performed coordinator-side in strip order
    with the same expressions as ``ShardedLandmarkStatsCache``, so
    every score is **bit-identical** to an in-process sharded landmark
    run with the same ``(n_shards, n_landmarks, landmark_seed)``.
    """

    #: Fan-out rounds attempted before declaring the placement
    #: unreachable (each round re-targets the updated holder set).
    MAX_FANOUT_ATTEMPTS = 4

    def __init__(
        self,
        coordinator,
        X: np.ndarray,
        block_kernel: BlockKernelFactory = default_block_kernel,
        normalize: bool = True,
        n_shards: int = 2,
        n_landmarks: int | None = None,
        landmark_seed: int = 0,
        placement: ShardPlacement | None = None,
        namespace: str = "default",
    ):
        super().__init__()
        self.coordinator = coordinator
        # Namespaced residency, mirroring PlacedGramCache: every frame
        # carries the namespace so tenants sharing the fleet keep
        # disjoint worker-side factor stores.
        self.namespace = str(namespace)
        self.X = as_2d(X)
        n = self.X.shape[0]
        if not 1 <= n_shards <= n:
            raise ValueError(
                f"n_shards must be in [1, n_samples={n}], got {n_shards}"
            )
        self.block_kernel = block_kernel
        self.normalize = normalize
        self.n_shards = int(n_shards)
        m = default_n_landmarks(n) if n_landmarks is None else int(n_landmarks)
        self.landmark_seed = int(landmark_seed)
        self.landmarks = select_landmarks(n, m, self.landmark_seed)
        self.n_landmarks = m
        self.placement = placement or ShardPlacement(
            self.n_shards, coordinator.n_workers, replication=1
        )
        if self.placement.n_shards != self.n_shards:
            raise ValueError("placement does not cover n_shards strips")
        if self.placement.replication != 1:
            raise ValueError(
                "landmark factor strips are rebuilt on adoption, not "
                "replicated; the placement must use replication=1"
            )
        self.row_slices = shard_row_slices(n, self.n_shards)
        self._initialised = False
        self._initialised_workers: set[int] = set()
        # Per block: the m×r whitening transform (shipped with every
        # landmark fan-out so adopters self-heal) and the globally
        # reduced factor column means (the centring vector).
        self._transforms: dict[BlockKey, np.ndarray] = {}
        self._col_means: dict[BlockKey, np.ndarray] = {}
        # Same lock discipline as PlacedGramCache: coordinator plane
        # locks before _data_lock, never the reverse.
        self._data_lock = threading.RLock()
        self._lost_strips: set[int] = set()
        self._target_body: dict | None = None
        self._target_workers: set[int] = set()
        self._adopt_warned = False
        self.n_gram_computations = 0
        self.n_factor_computations = 0
        self.n_gathers = 0
        self.n_promotions = 0
        self.n_replicated_strips = 0
        self.n_replication_failures = 0
        self.n_strip_rebuilds = 0
        self.factor_bytes_shipped = 0
        self.resident_strip_bytes: dict[int, int] = {}
        coordinator.add_death_listener(self._on_worker_death)
        # Fold standing deaths into the placement (a reused coordinator
        # notifies each death only once per worker life).
        for index in range(coordinator.n_workers):
            if coordinator.worker_is_dead(index):
                self._on_worker_death(index)

    def detach(self) -> None:
        """Unhook this cache from the coordinator's death notifications.

        Idempotent; called when the search that owned the cache is
        over, so a stale cache stops mutating placements for results
        nobody will read.
        """
        self.coordinator.remove_death_listener(self._on_worker_death)

    @property
    def max_strip_rows(self) -> int:
        """Largest row count any one strip (hence worker block) holds."""
        return max(sl.stop - sl.start for sl in self.row_slices)

    # -- death handling -------------------------------------------------

    def _on_worker_death(self, worker_index: int) -> None:
        """Death listener: bookkeeping only (no network I/O here).

        With ``replication=1`` every strip the dead worker held is
        *lost*; the next fan-out adopts the lost slices on survivors
        and the self-healing handlers rebuild the factors there.
        """
        with self._data_lock:
            outcome = self.placement.drop_worker(worker_index)
            self.n_promotions += len(outcome["promoted"])
            self._lost_strips.update(outcome["lost"])
            self._initialised_workers.discard(worker_index)
            self._target_workers.discard(worker_index)
            self.resident_strip_bytes.pop(worker_index, None)
        tracer = get_tracer()
        if tracer.enabled and outcome["lost"]:
            tracer.event(
                "placement.strips_lost",
                cat="placement",
                worker=worker_index,
                lost=list(outcome["lost"]),
            )

    # -- placement-plane orchestration ---------------------------------

    def _request(self, worker: int, msg_type: int, body: dict) -> dict:
        reply = self.coordinator.placement_request(
            worker, msg_type, dump_payload({**body, "ns": self.namespace})
        )
        return load_payload(reply)

    def _fan_out(
        self, msg_type: int, body: dict
    ) -> tuple[dict[int, dict], tuple[int, ...]]:
        """One request to every live strip holder, computed concurrently.

        Same retry/repair loop as :meth:`PlacedGramCache._fan_out`:
        deaths during the round promote the placement in place, lost
        strips are adopted on survivors, and the replayed requests
        self-heal from the transform in the request body.  Returns
        ``(replies, owners)`` with the owner snapshot validated against
        the replies.
        """
        payload = dump_payload({**body, "ns": self.namespace})
        for _ in range(self.MAX_FANOUT_ATTEMPTS):
            self._adopt_lost_strips()
            with self._data_lock:
                targets = [
                    w
                    for w in self.placement.active_workers
                    if not self.coordinator.worker_is_dead(w)
                ]
            if not targets:
                raise WorkerCrashError(
                    "no live strip holders remain in the placement"
                )
            with get_tracer().span(
                "placement.fan_out",
                cat="placement",
                msg_type=msg_type,
                n_targets=len(targets),
            ):
                raw = self.coordinator.placement_fan_out(
                    targets, msg_type, payload
                )
            replies = {w: load_payload(r) for w, r in raw.items()}
            with self._data_lock:
                owners = self.placement.owners
            if all(o is not None and o in replies for o in owners):
                return replies, owners
        raise WorkerCrashError(
            "placement fan-out could not reach a live holder for every "
            f"strip after {self.MAX_FANOUT_ATTEMPTS} rounds"
        )

    def ensure_init(self) -> None:
        """Ship each holding worker its ownership state once (idempotent)."""
        with self._key_lock("__init__"):
            if self._initialised:
                return
            with self._data_lock:
                workers = list(self.placement.active_workers)
            for worker in workers:
                if self.coordinator.worker_is_dead(worker):
                    continue
                self._init_worker(worker)
            self._initialised = True

    def _init_worker(self, worker: int) -> bool:
        """Send MSG_INIT (once, with the landmark set) to a worker."""
        with self._data_lock:
            if worker in self._initialised_workers:
                return True
            slices = {
                s: self.row_slices[s] for s in self.placement.strips_of(worker)
            }
        try:
            self._request(
                worker,
                MSG_INIT,
                {
                    "X": self.X,
                    "block_kernel": self.block_kernel,
                    "normalize": self.normalize,
                    "slices": slices,
                    "landmarks": self.landmarks,
                },
            )
        except (ProtocolError, OSError):
            return False
        with self._data_lock:
            self._initialised_workers.add(worker)
        return True

    def ship_target(self, centered_y: np.ndarray) -> None:
        """Ship the centred target to every live holder (idempotent)."""
        with self._key_lock("__target__"):
            if self._target_body is not None:
                return
            self.ensure_init()
            body = {"centered_y": centered_y}
            with self._data_lock:
                workers = list(self.placement.active_workers)
            shipped: set[int] = set()
            for worker in workers:
                if self.coordinator.worker_is_dead(worker):
                    continue
                try:
                    self._request(worker, MSG_TARGET, body)
                except (ProtocolError, OSError):
                    continue
                shipped.add(worker)
            with self._data_lock:
                self._target_body = body
                self._target_workers |= shipped

    def _ship_target_to(self, worker: int) -> None:
        """Forward the remembered target payload to a late adopter."""
        with self._data_lock:
            body = self._target_body
            if body is None or worker in self._target_workers:
                return
        self._request(worker, MSG_TARGET, body)
        with self._data_lock:
            self._target_workers.add(worker)

    # -- resilience: adoption ------------------------------------------

    def _adopt_lost_strips(self) -> None:
        """Adopt strips whose owner died on surviving workers.

        Loud by design (same contract as the exact cache's
        ``replication=1`` rebuild): warn once, publish the lost row
        slices on the least-loaded survivor, and let the self-healing
        landmark handlers rebuild the factor strips from the transform
        the very next fan-out carries.
        """
        with self._data_lock:
            lost = sorted(self._lost_strips)
        if not lost:
            return
        if not self._adopt_warned:
            self._adopt_warned = True
            warnings.warn(
                "a dead landmark strip owner forces strip"
                f"{'s' if len(lost) > 1 else ''} {lost} to be adopted by a "
                "surviving worker; the factor strips are rebuilt there on "
                "the next fan-out",
                RuntimeWarning,
                stacklevel=2,
            )
        for strip in lost:
            self._adopt_strip(strip)

    def _adopt_strip(self, strip: int) -> None:
        with self._data_lock:
            candidates = sorted(
                (
                    w
                    for w in self.coordinator.live_worker_indices()
                    if w not in self.placement.holders_of(strip)
                ),
                key=lambda w: (len(self.placement.strips_of(w)), w),
            )
        for target in candidates:
            if not self._init_worker(target):
                continue
            try:
                self._ship_target_to(target)
                # Publish the slice only — no strip payload: the
                # landmark handlers rebuild from the shipped transform.
                self._request(
                    target,
                    MSG_STRIP_INSTALL,
                    {
                        "slices": {strip: self.row_slices[strip]},
                        "scaled": {},
                        "centered": {},
                    },
                )
            except (ProtocolError, OSError):
                continue
            with self._data_lock:
                self.placement.add_holder(strip, target)
                self._lost_strips.discard(strip)
                self.n_strip_rebuilds += 1
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(
                    "placement.adopt_strip",
                    cat="placement",
                    strip=strip,
                    target=target,
                )
            return
        raise WorkerCrashError(
            f"no surviving worker could adopt lost landmark strip {strip}"
        )

    # -- landmark factor plane -----------------------------------------

    def gram_cached(self, block: Sequence[int]) -> bool:
        """True if the block's factor strips are already built fleet-side."""
        return canonical_block_key(block) in self._col_means

    def transform(self, block: Sequence[int]) -> np.ndarray:
        """The m×r whitening transform of one block (coordinator-side).

        Computed from the O(m²) landmark Gram with the kernel bound to
        ``X[L]`` — exactly the expressions of the in-process landmark
        caches, so the shipped transform (and hence every worker-built
        strip) is bit-identical to the sharded layout.
        """
        key = canonical_block_key(block)
        transform = self._transforms.get(key)
        if transform is None:
            with self._key_lock(("transform", key)):
                if key not in self._transforms:
                    landmarks = self.landmarks
                    kernel = self.block_kernel(key).bind(self.X[landmarks])
                    transform = landmark_transform(
                        kernel(self.X[landmarks], self.X[landmarks])
                    )
                    with self._lock:
                        self._transforms[key] = transform
        return self._transforms[key]

    def ensure_factor(self, block: Sequence[int]) -> np.ndarray:
        """Build a block's factor strips on every holder, once.

        Returns the block's factor column means — the O(m) reduction
        the stats cache centres with, summed from the per-strip column
        sums in strip order (always the primary holder's reply),
        matching ``ShardedLandmarkStatsCache`` bit for bit.
        """
        key = canonical_block_key(block)
        cached = self._col_means.get(key)
        if cached is not None:
            return cached
        with self._key_lock(("factor", key)):
            if key not in self._col_means:
                self.ensure_init()
                transform = self.transform(key)
                replies, owners = self._fan_out(
                    MSG_LANDMARK_FACTOR, {"key": key, "transform": transform}
                )
                col_means = sum(
                    replies[owners[s]]["col_sums"][s]
                    for s in range(self.n_shards)
                ) / float(self.X.shape[0])
                for worker, reply in replies.items():
                    self.resident_strip_bytes[worker] = int(
                        reply["resident_bytes"]
                    )
                with self._lock:
                    self.n_factor_computations += 1
                    self.factor_bytes_shipped += int(transform.nbytes) * len(
                        replies
                    )
                    self._col_means[key] = col_means
        return self._col_means[key]

    def _book_factor_bytes(self, nbytes: int, n_targets: int) -> None:
        """Ledger hook for transforms re-shipped by stats/pair fan-outs."""
        with self._lock:
            self.factor_bytes_shipped += int(nbytes) * int(n_targets)

    def gram(self, block: Sequence[int]) -> np.ndarray:
        """Never materialised: factor strips stay worker-resident.

        Exact final-model training runs through a fresh exact cache
        (``FacetedLearner`` does this automatically when
        ``approx="landmarks"``); asking the placed landmark layout for
        an n×n Gram is a configuration error, not a slow path.
        """
        raise NotImplementedError(
            "PlacedLandmarkGramCache keeps Nyström factor strips resident "
            "worker-side and never assembles an n×n Gram coordinator-side; "
            "use an exact cache for final-model training"
        )

    def grams_for(self, partition: SetPartition) -> list[np.ndarray]:
        """See :meth:`gram` — never materialised."""
        raise NotImplementedError(
            "PlacedLandmarkGramCache never assembles n×n Grams; use an "
            "exact cache for final-model training"
        )

    def stats_cache(self, y: np.ndarray) -> "PlacedLandmarkStatsCache":
        """The statistics cache matching this placed factor layout."""
        return PlacedLandmarkStatsCache(self, y)


class PlacedLandmarkStatsCache(_KeyLocked, _PartitionStatsMixin):
    """Landmark-factor statistics reduced across worker-resident strips.

    Scalar surface identical to
    :class:`~repro.engine.cache.ShardedLandmarkStatsCache`; the
    per-strip partials (``(HF_s)' Hy[rows_s]`` and ``(HF_s)' HF_s``)
    are computed by each strip's primary holder and summed
    coordinator-side **in strip order**, which keeps every value
    bit-identical to the in-process sharded landmark cache.  The
    ledger follows the same contract: ``n_matrix_ops`` stays 0,
    ``n_landmark_ops`` books the standard 2/3/1 schedule.
    """

    def __init__(self, grams: PlacedLandmarkGramCache, y: np.ndarray):
        super().__init__()
        self.grams = grams
        y = np.asarray(y, dtype=float).ravel()
        if y.shape[0] != self.grams.X.shape[0]:
            raise ValueError("y length must match the cached sample")
        self.y = y
        self._target_inner: dict[BlockKey, float] = {}
        self._pair_inner: dict[tuple[BlockKey, BlockKey], float] = {}
        self._stats_keys: set[BlockKey] = set()
        # Rank-1 centred target: O(n), stays coordinator-side.
        self.centered_y = y - y.mean()
        self.target_norm = float(self.centered_y @ self.centered_y)
        self.n_matrix_ops = 0
        # Ledger parity with the exact caches' two target passes.
        self.n_landmark_ops = 2

    def _pair_stats_keys(self):
        return self._stats_keys

    def _ensure_target(self) -> None:
        self.grams.ship_target(self.centered_y)

    def block_stats(self, block: Sequence[int]) -> tuple[float, float]:
        """``(a_i, M_ii)`` reduced across the primary holders."""
        key = canonical_block_key(block)
        if key not in self._stats_keys:
            with self._key_lock(("block", key)):
                if key not in self._stats_keys:
                    self._ensure_target()
                    col_means = self.grams.ensure_factor(key)
                    transform = self.grams.transform(key)
                    replies, owners = self.grams._fan_out(
                        MSG_LANDMARK_STATS,
                        {
                            "key": key,
                            "transform": transform,
                            "col_means": col_means,
                        },
                    )
                    self.grams._book_factor_bytes(
                        transform.nbytes, len(replies)
                    )
                    n_shards = self.grams.n_shards
                    t = sum(
                        replies[owners[s]]["stats"][s][0]
                        for s in range(n_shards)
                    )
                    target_inner = float(t @ t)
                    inner = sum(
                        replies[owners[s]]["stats"][s][1]
                        for s in range(n_shards)
                    )
                    self_inner = float(np.sum(inner * inner))
                    for worker, reply in replies.items():
                        self.grams.resident_strip_bytes[worker] = int(
                            reply["resident_bytes"]
                        )
                    with self._lock:
                        self._target_inner[key] = target_inner
                        self._pair_inner[(key, key)] = self_inner
                        self.n_landmark_ops += 3
                        self._stats_keys.add(key)
        return self._target_inner[key], self._pair_inner[(key, key)]

    def pair_inner(self, first: Sequence[int], second: Sequence[int]) -> float:
        """``M_ij`` from strip-order-summed worker inner partials."""
        key = tuple(
            sorted((canonical_block_key(first), canonical_block_key(second)))
        )
        value = self._pair_inner.get(key)
        if value is not None:
            return value
        self.block_stats(key[0])
        self.block_stats(key[1])
        if key[0] == key[1]:
            return self._pair_inner[key]
        with self._key_lock(("pair", key)):
            if key not in self._pair_inner:
                first_transform = self.grams.transform(key[0])
                second_transform = self.grams.transform(key[1])
                replies, owners = self.grams._fan_out(
                    MSG_LANDMARK_PAIR,
                    {
                        "first": key[0],
                        "second": key[1],
                        "first_transform": first_transform,
                        "second_transform": second_transform,
                        "first_col_means": self.grams.ensure_factor(key[0]),
                        "second_col_means": self.grams.ensure_factor(key[1]),
                    },
                )
                self.grams._book_factor_bytes(
                    first_transform.nbytes + second_transform.nbytes,
                    len(replies),
                )
                cross = sum(
                    replies[owners[s]]["inners"][s]
                    for s in range(self.grams.n_shards)
                )
                value = float(np.sum(cross * cross))
                with self._lock:
                    self._pair_inner[key] = value
                    self.n_landmark_ops += 1
        return self._pair_inner[key]
