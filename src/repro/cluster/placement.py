"""Placement-aware sharding: workers own row strips end-to-end.

The in-process :class:`~repro.engine.cache.ShardedGramCache` proved
the layout (per-shard row strips, rank-1 centred target, strip-wise
scalar reductions) but kept every strip in one address space.  This
module moves strip *ownership* onto the cluster workers:

* :class:`ShardPlacement` maps each strip index to the worker that
  owns it (round-robin by default, or an explicit assignment);
* :class:`PlacedGramCache` / :class:`PlacedBlockStatsCache` are the
  coordinator-side facades with the same surface as the sharded
  caches (``strips`` are replaced by ownership; ``block_stats`` /
  ``pair_inner`` / ``partition_stats`` / ``target_norm`` are
  identical), orchestrating the per-block reduction over the
  placement plane of a :class:`~repro.cluster.coordinator.Coordinator`.

What crosses the wire per block is three O(n)-vector round trips
(raw-diagonal → scale, row-mean segments → global row means, then the
per-strip scalar statistics) and per *pair* a single scalar round trip
— the strips themselves are built and stay **resident worker-side**,
never re-shipped per task.  The one-time ``MSG_INIT`` ships the
training sample to each worker, standing in for data that a real IoT
deployment already has on the node that owns those rows.

Numerical contract: every reduction happens in the same order and with
the same expressions as ``ShardedBlockStatsCache``, so the scalars —
and therefore every score — are **bit-identical** to an in-process
sharded run with the same ``n_shards``.  The op ledger keeps the same
logical schedule (2 target passes, 3 per block, 1 per pair;
``n_gram_computations`` one per block), and ``n_gathers`` counts the
deliberate full-Gram assemblies (final-model training only): a search
keeps it at zero.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.cluster.protocol import (
    MSG_BLOCK_CENTER,
    MSG_BLOCK_RAW,
    MSG_BLOCK_SCALE,
    MSG_INIT,
    MSG_PAIR,
    MSG_STRIPS_FETCH,
    MSG_TARGET,
    dump_payload,
    load_payload,
)
from repro.combinatorics.partitions import SetPartition
from repro.engine.cache import (
    _KeyLocked,
    _PartitionStatsMixin,
    canonical_block_key,
    shard_row_slices,
)
from repro.kernels.base import as_2d
from repro.kernels.partition_kernel import BlockKernelFactory, default_block_kernel

__all__ = ["ShardPlacement", "PlacedGramCache", "PlacedBlockStatsCache"]

BlockKey = tuple[int, ...]


class ShardPlacement:
    """Assignment of strip indices to workers.

    ``owners[s]`` is the index of the worker owning strip ``s``.  The
    default is round-robin, which balances strips across the fleet;
    pass ``owners`` explicitly to pin strips (e.g. to the node that
    already holds those rows).
    """

    def __init__(
        self,
        n_shards: int,
        n_workers: int,
        owners: Sequence[int] | None = None,
    ):
        if n_shards < 1:
            raise ValueError("n_shards must be positive")
        if n_workers < 1:
            raise ValueError("n_workers must be positive")
        if owners is None:
            owners = [s % n_workers for s in range(n_shards)]
        owners = [int(o) for o in owners]
        if len(owners) != n_shards:
            raise ValueError(
                f"owners must assign all {n_shards} strips, got {len(owners)}"
            )
        if any(o < 0 or o >= n_workers for o in owners):
            raise ValueError("strip owner index outside the worker fleet")
        self.n_shards = int(n_shards)
        self.n_workers = int(n_workers)
        self.owners = tuple(owners)

    def strips_of(self, worker_index: int) -> tuple[int, ...]:
        """Strip indices the worker owns (possibly empty)."""
        return tuple(
            s for s, owner in enumerate(self.owners) if owner == worker_index
        )

    @property
    def active_workers(self) -> tuple[int, ...]:
        """Workers owning at least one strip, in index order."""
        return tuple(sorted(set(self.owners)))


class PlacedGramCache(_KeyLocked):
    """Coordinator-side facade over worker-resident Gram strips.

    Same ledger surface as :class:`~repro.engine.cache.ShardedGramCache`
    (``n_gram_computations``, ``n_gathers``, ``row_slices``,
    ``max_strip_rows``, ``stats_cache``); the strips themselves live on
    the owning workers.  ``gram()`` — the one deliberate full-matrix
    assembly, for final-model training — fetches every strip once and
    counts a gather.
    """

    def __init__(
        self,
        coordinator,
        X: np.ndarray,
        block_kernel: BlockKernelFactory = default_block_kernel,
        normalize: bool = True,
        n_shards: int = 2,
        placement: ShardPlacement | None = None,
    ):
        super().__init__()
        self.coordinator = coordinator
        self.X = as_2d(X)
        n = self.X.shape[0]
        if not 1 <= n_shards <= n:
            raise ValueError(
                f"n_shards must be in [1, n_samples={n}], got {n_shards}"
            )
        self.block_kernel = block_kernel
        self.normalize = normalize
        self.n_shards = int(n_shards)
        self.placement = placement or ShardPlacement(
            self.n_shards, coordinator.n_workers
        )
        if self.placement.n_shards != self.n_shards:
            raise ValueError("placement does not cover n_shards strips")
        self.row_slices = shard_row_slices(n, self.n_shards)
        self._initialised = False
        # Per block: the global row-mean vector and grand mean of the
        # (normalised) strips — the O(n) reduction centring needs.
        self._row_stats: dict[BlockKey, tuple[np.ndarray, float]] = {}
        self.n_gram_computations = 0
        self.n_gathers = 0
        self.resident_strip_bytes: dict[int, int] = {}

    @property
    def max_strip_rows(self) -> int:
        """Largest row count any one strip (hence worker block) holds."""
        return max(sl.stop - sl.start for sl in self.row_slices)

    # -- placement-plane orchestration ---------------------------------

    def _request(self, worker: int, msg_type: int, body: dict) -> dict:
        reply = self.coordinator.placement_request(
            worker, msg_type, dump_payload(body)
        )
        return load_payload(reply)

    def _fan_out(self, msg_type: int, body: dict) -> dict[int, dict]:
        """One request to every strip-owning worker, computed concurrently.

        All requests go out before any reply is awaited
        (:meth:`~repro.cluster.coordinator.Coordinator.placement_fan_out`),
        so per-strip O(n²) work overlaps across the fleet; the replies
        are then reduced coordinator-side in strip order regardless of
        completion order, keeping the sums bit-identical.
        """
        replies = self.coordinator.placement_fan_out(
            self.placement.active_workers, msg_type, dump_payload(body)
        )
        return {worker: load_payload(reply) for worker, reply in replies.items()}

    def ensure_init(self) -> None:
        """Ship each worker its ownership state once (idempotent)."""
        with self._key_lock("__init__"):
            if self._initialised:
                return
            for worker in self.placement.active_workers:
                slices = {
                    s: self.row_slices[s]
                    for s in self.placement.strips_of(worker)
                }
                self._request(
                    worker,
                    MSG_INIT,
                    {
                        "X": self.X,
                        "block_kernel": self.block_kernel,
                        "normalize": self.normalize,
                        "slices": slices,
                    },
                )
            self._initialised = True

    def ensure_strips(self, block: Sequence[int]) -> tuple[np.ndarray, float]:
        """Build (normalise) a block's strips worker-side, once.

        Returns the block's global row means and grand mean — the O(n)
        reduction the stats cache needs for centring.  Reduction order
        matches ``ShardedGramCache`` exactly: diagonal segments and
        row-mean segments are concatenated in strip order.
        """
        key = canonical_block_key(block)
        cached = self._row_stats.get(key)
        if cached is not None:
            return cached
        with self._key_lock(("strips", key)):
            if key not in self._row_stats:
                self.ensure_init()
                raw = self._fan_out(MSG_BLOCK_RAW, {"key": key})
                scale = None
                if self.normalize:
                    diagonal = np.concatenate(
                        [
                            raw[self.placement.owners[s]]["diag"][s]
                            for s in range(self.n_shards)
                        ]
                    )
                    scale = np.sqrt(np.clip(diagonal, 1e-12, None))
                scaled = self._fan_out(MSG_BLOCK_SCALE, {"key": key, "scale": scale})
                row_means = np.concatenate(
                    [
                        scaled[self.placement.owners[s]]["row_means"][s]
                        for s in range(self.n_shards)
                    ]
                )
                grand_mean = float(row_means.mean())
                with self._lock:
                    self.n_gram_computations += 1
                    self._row_stats[key] = (row_means, grand_mean)
        return self._row_stats[key]

    # -- GramCache surface ---------------------------------------------

    def gram(self, block: Sequence[int]) -> np.ndarray:
        """Gather the full Gram from the workers' resident strips.

        The one deliberate materialisation point (final-model training,
        reference checks); never called on the incremental scoring
        path, and ``n_gathers`` counts every use.
        """
        key = canonical_block_key(block)
        self.ensure_strips(key)
        fetched = self._fan_out(MSG_STRIPS_FETCH, {"key": key})
        strips = [
            fetched[self.placement.owners[s]]["strips"][s]
            for s in range(self.n_shards)
        ]
        with self._lock:
            self.n_gathers += 1
        return np.vstack(strips)

    def grams_for(self, partition: SetPartition) -> list[np.ndarray]:
        """Gathered per-block Grams (counts one gather per block)."""
        return [self.gram(block) for block in partition.blocks]

    def stats_cache(self, y: np.ndarray) -> "PlacedBlockStatsCache":
        """The statistics cache matching this placed layout."""
        return PlacedBlockStatsCache(self, y)


class PlacedBlockStatsCache(_KeyLocked, _PartitionStatsMixin):
    """Centred-Gram scalars reduced across worker-resident strips.

    Scalar surface identical to
    :class:`~repro.engine.cache.ShardedBlockStatsCache`; the per-strip
    partial statistics are computed by the strip's owning worker and
    summed coordinator-side **in strip order**, which keeps every value
    bit-identical to the in-process sharded cache.
    """

    def __init__(self, grams: PlacedGramCache, y: np.ndarray):
        super().__init__()
        self.grams = grams
        y = np.asarray(y, dtype=float).ravel()
        if y.shape[0] != self.grams.X.shape[0]:
            raise ValueError("y length must match the cached sample")
        self.y = y
        self._target_inner: dict[BlockKey, float] = {}
        self._pair_inner: dict[tuple[BlockKey, BlockKey], float] = {}
        self._centered_keys: set[BlockKey] = set()
        # Rank-1 centred target, exactly as the sharded cache: its
        # statistics are O(n) and stay coordinator-side.
        self.centered_y = y - y.mean()
        self.target_norm = float(self.centered_y @ self.centered_y)
        # Ledger parity with the dense cache's two target passes.
        self.n_matrix_ops = 2
        self._target_shipped = False

    def _ensure_target(self) -> None:
        with self._key_lock("__target__"):
            if self._target_shipped:
                return
            self.grams.ensure_init()
            for worker in self.grams.placement.active_workers:
                self.grams._request(
                    worker, MSG_TARGET, {"centered_y": self.centered_y}
                )
            self._target_shipped = True

    def block_stats(self, block: Sequence[int]) -> tuple[float, float]:
        """``(a_i, M_ii)`` reduced across the owning workers."""
        key = canonical_block_key(block)
        if key not in self._centered_keys:
            with self._key_lock(("block", key)):
                if key not in self._centered_keys:
                    self._ensure_target()
                    row_means, grand_mean = self.grams.ensure_strips(key)
                    replies = self.grams._fan_out(
                        MSG_BLOCK_CENTER,
                        {
                            "key": key,
                            "row_means": row_means,
                            "grand_mean": grand_mean,
                        },
                    )
                    owners = self.grams.placement.owners
                    target_inner = float(
                        sum(
                            replies[owners[s]]["stats"][s][0]
                            for s in range(self.grams.n_shards)
                        )
                    )
                    self_inner = float(
                        sum(
                            replies[owners[s]]["stats"][s][1]
                            for s in range(self.grams.n_shards)
                        )
                    )
                    for worker, reply in replies.items():
                        self.grams.resident_strip_bytes[worker] = int(
                            reply["resident_bytes"]
                        )
                    with self._lock:
                        self._target_inner[key] = target_inner
                        self._pair_inner[(key, key)] = self_inner
                        self.n_matrix_ops += 3
                        self._centered_keys.add(key)
        return self._target_inner[key], self._pair_inner[(key, key)]

    def pair_inner(self, first: Sequence[int], second: Sequence[int]) -> float:
        """``M_ij`` as a strip-order sum of worker-local strip inners."""
        key = tuple(
            sorted((canonical_block_key(first), canonical_block_key(second)))
        )
        value = self._pair_inner.get(key)
        if value is not None:
            return value
        self.block_stats(key[0])
        self.block_stats(key[1])
        if key[0] == key[1]:
            return self._pair_inner[key]
        with self._key_lock(("pair", key)):
            if key not in self._pair_inner:
                replies = self.grams._fan_out(
                    MSG_PAIR, {"key": key[0], "other": key[1]}
                )
                owners = self.grams.placement.owners
                value = float(
                    sum(
                        replies[owners[s]]["inners"][s]
                        for s in range(self.grams.n_shards)
                    )
                )
                with self._lock:
                    self._pair_inner[key] = value
                    self.n_matrix_ops += 1
        return self._pair_inner[key]
