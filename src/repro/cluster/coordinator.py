"""Coordinator: a request/response scheduler over a worker fleet.

The coordinator is the cluster twin of the process pool's parent side,
generalised into a ticketed request/response scheduler: batch task
envelopes, speculative envelopes, and typed serving requests pinned to
specific workers all ride the same per-worker pipeline windows.  It
keeps one **task connection** per worker, down which
:class:`~repro.engine.tasks.EngineTask` payloads (``MSG_TASK``) and
pinned serving requests (``MSG_SERVE_*``, via ``submit_request``) are
pipelined (up to ``window`` frames outstanding per worker — the worker
answers in FIFO order, so results need no sequence numbers), plus a
lazily opened
**placement connection** per worker for the request/reply shard-
ownership traffic (kept separate so a placement request can never read
a task result off the stream, even when a prefetch thread warms
statistics while a batch is in flight), plus — when re-replication is
active — a **replication connection** per worker so strip copies never
interleave with foreground placement requests.

Fault model, extending :class:`~repro.engine.backends.ProcessPoolBackend`:

* a worker that disconnects (crash, kill, network) has its outstanding
  envelopes **reassigned** to the surviving workers — task scoring is
  pure and deterministic, so rescoring is always safe; its pinned
  requests instead resolve **lost** (``wait_ticket`` returns ``None``)
  because only the submitter knows which surviving workers hold the
  resident state to answer them — the serving plane re-routes to
  replica strip holders;
* with ``heartbeat_interval`` set, a dedicated monitor thread pings
  every worker over its own connection; a worker that stops answering
  within ``heartbeat_timeout`` is **evicted** — its sockets are aborted
  so any blocked send/recv wakes immediately — which catches *hung*
  nodes (accepting connections, never replying), not just crashed ones;
* every detected death (synchronous or heartbeat) notifies registered
  **death listeners** exactly once per worker life — the hook the
  placement layer uses to promote replica strip owners;
* when *no* workers survive, the coordinator attempts up to ``retries``
  reconnect rounds over every registered address before raising
  :class:`~repro.engine.tasks.WorkerCrashError`;
* an application error reported by a worker (``MSG_ERROR``) is raised
  immediately — a task that poisons workers must not cascade through
  the fleet via reassignment.

With ``secret`` set, every frame on every link carries the shared-
secret HMAC trailer (:class:`~repro.cluster.protocol.FrameAuth`); the
per-frame overhead is booked separately (``auth_bytes_*``) so the
ledger shows the cost of authentication, not just the totals.

Every link counts its wire bytes per accounting bucket (``envelope``
vs ``placement`` vs ``heartbeat`` vs ``replication`` vs ``rebalance``,
headers included); :meth:`Coordinator.wire_stats` aggregates them —
the evidence ``BENCH_backends.json`` records.

Elastic membership: :meth:`Coordinator.admit_worker` admits a revived
worker back into its previous index (or appends a brand-new one) via
the ``MSG_JOIN`` handshake on a dedicated per-worker rebalance link,
clears its recorded death so later failures notify listeners again,
and runs registered **join listeners** — the hook the placement layer
uses to migrate strip ownership onto the admitted worker.
"""

from __future__ import annotations

import select
import socket
import threading
import time
from collections import deque
from collections.abc import Callable, Iterable, Sequence

from repro.cluster.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    MSG_ERROR,
    MSG_JOIN,
    MSG_JOIN_ACK,
    MSG_OK,
    MSG_PING,
    MSG_PONG,
    MSG_RESULT,
    MSG_SHUTDOWN,
    MSG_TASK,
    FrameAuth,
    ProtocolError,
    auth_overhead,
    dump_payload,
    load_payload,
    recv_frame,
    send_frame,
    wire_category,
)
from repro.cluster.tenancy import DEFAULT_TENANT, TenantScheduler, TenantState
from repro.engine.tasks import WorkerCrashError, decode_result
from repro.telemetry import get_tracer, merge_counts

__all__ = ["WorkerLink", "Coordinator", "parse_address", "RemoteTaskError"]


class RemoteTaskError(RuntimeError):
    """A worker reported an application error (not a transport fault)."""


def parse_address(address) -> tuple[str, int]:
    """Accept ``"host:port"`` strings or ``(host, port)`` pairs."""
    if isinstance(address, str):
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(
                f"worker address {address!r} is not of the form 'host:port'"
            )
        return host, int(port)
    host, port = address
    return str(host), int(port)


class WorkerLink:
    """One TCP connection to a worker, with per-bucket byte accounting."""

    def __init__(
        self,
        address,
        connect_timeout: float = 10.0,
        io_timeout: float | None = 120.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        bucket: str | None = None,
        secret: str | bytes | None = None,
    ):
        self.host, self.port = parse_address(address)
        self.connect_timeout = connect_timeout
        self.io_timeout = io_timeout
        self.max_frame_bytes = max_frame_bytes
        # A link pinned to one plane books all its traffic there
        # (placement replies are generic MSG_OK frames, so the plane,
        # not the frame type, is the accounting truth).
        self.bucket = bucket
        self.secret = secret
        self._auth: FrameAuth | None = None
        self._sock: socket.socket | None = None
        self.bytes_out: dict[str, int] = {}
        self.bytes_in: dict[str, int] = {}
        self.auth_bytes_out = 0
        self.auth_bytes_in = 0
        #: Wire size of the most recent frame received on this link —
        #: how the coordinator attributes a result's bytes to the
        #: tenant whose ticket it resolves.
        self.last_frame_bytes_in = 0

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def connect(self) -> None:
        if self._sock is not None:
            return
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )
        sock.settimeout(self.io_timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # Nonces are per-connection stream state: a reconnect starts a
        # fresh authenticator on both ends.
        self._auth = FrameAuth(self.secret) if self.secret else None
        self._sock = sock

    def close(self) -> None:
        sock, self._sock = self._sock, None
        self._auth = None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def readable(self) -> bool:
        """True if at least one byte can be read without blocking.

        Frame-granularity is *not* guaranteed — a readable socket may
        hold a partial frame, so a follow-up ``recv`` can still block
        briefly.  Good enough for opportunistic draining of completed
        results between submissions (frames here are small and local).
        """
        sock = self._sock
        if sock is None:
            return False
        try:
            ready, _, _ = select.select([sock], [], [], 0)
        except (OSError, ValueError):
            return False
        return bool(ready)

    def abort(self) -> None:
        """Shut the socket down without closing it (safe cross-thread).

        Any thread blocked in ``send``/``recv`` on this link wakes with
        an :class:`OSError`/:class:`ConnectionClosed` and runs the
        normal death path — the heartbeat monitor's eviction lever.
        """
        sock = self._sock
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def send(self, msg_type: int, payload: bytes) -> int:
        """Ship one frame; returns its wire byte count (headers included)
        so callers can book the same bytes into finer-grained ledgers
        (the coordinator's per-tenant envelope accounting)."""
        self.connect()
        sent = send_frame(self._sock, msg_type, payload, auth=self._auth)
        bucket = self.bucket or wire_category(msg_type)
        self.bytes_out[bucket] = self.bytes_out.get(bucket, 0) + sent
        if self._auth is not None:
            self.auth_bytes_out += auth_overhead()
        return sent

    def recv(self) -> tuple[int, bytes]:
        if self._sock is None:
            raise ProtocolError("receiving on a closed link")
        msg_type, payload, received = recv_frame(
            self._sock, self.max_frame_bytes, auth=self._auth
        )
        self.last_frame_bytes_in = received
        bucket = self.bucket or wire_category(msg_type)
        self.bytes_in[bucket] = self.bytes_in.get(bucket, 0) + received
        if self._auth is not None:
            self.auth_bytes_in += auth_overhead()
        if msg_type == MSG_ERROR:
            raise RemoteTaskError(
                f"worker {self.address} reported: {load_payload(payload)}"
            )
        return msg_type, payload

    def request(self, msg_type: int, payload: bytes, expect: int) -> bytes:
        """Strict request/reply exchange (placement + control planes)."""
        self.send(msg_type, payload)
        got, reply = self.recv()
        if got != expect:
            raise ProtocolError(
                f"worker {self.address} answered frame type {got}, "
                f"expected {expect}"
            )
        return reply


class _TaskChannel:
    """A worker's task-plane state: its link and outstanding envelopes."""

    def __init__(self, link: WorkerLink, index: int):
        self.link = link
        self.index = index
        # Ticket ids in submission order == reply order (worker FIFO).
        self.outstanding: deque[int] = deque()

    def __len__(self) -> int:
        return len(self.outstanding)


class Coordinator:
    """Owns the worker fleet: registration, pipelining, recovery.

    Parameters
    ----------
    workers:
        Worker addresses (``"host:port"`` strings or ``(host, port)``
        pairs).  At least one is required.
    retries:
        Reconnect rounds over all registered addresses attempted when
        every worker has died mid-batch, before
        :class:`~repro.engine.tasks.WorkerCrashError` is raised.
    window:
        Envelopes kept outstanding per worker; 2 keeps each worker
        busy while its previous result is in flight.
    secret:
        Shared secret for per-frame HMAC authentication on every link;
        ``None`` (default) speaks the exact unauthenticated protocol.
    heartbeat_interval:
        Seconds between liveness pings to each worker on a dedicated
        monitor connection; ``None`` (default) disables the monitor and
        keeps PR-3 synchronous-failure detection only.
    heartbeat_timeout:
        Seconds a worker may take to answer a ping before it is evicted
        (its sockets aborted, its envelopes reassigned).  Defaults to
        ``2 * heartbeat_interval``.
    """

    def __init__(
        self,
        workers,
        retries: int = 1,
        window: int = 2,
        connect_timeout: float = 10.0,
        io_timeout: float | None = 120.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        secret: str | bytes | None = None,
        heartbeat_interval: float | None = None,
        heartbeat_timeout: float | None = None,
    ):
        addresses = [parse_address(w) for w in workers]
        if not addresses:
            raise ValueError("at least one worker address is required")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if window < 1:
            raise ValueError("window must be positive")
        if heartbeat_interval is not None and heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive (or None)")
        if secret is not None and not secret:
            raise ValueError(
                "secret must be non-empty; pass None to disable frame "
                "authentication explicitly"
            )
        self.retries = int(retries)
        self.window = int(window)
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = (
            heartbeat_timeout
            if heartbeat_timeout is not None
            else (2.0 * heartbeat_interval if heartbeat_interval else None)
        )
        self._link_options = dict(
            connect_timeout=connect_timeout,
            io_timeout=io_timeout,
            max_frame_bytes=max_frame_bytes,
            secret=secret,
        )
        self._addresses = addresses
        self._channels = [
            _TaskChannel(WorkerLink(addr, **self._link_options), index)
            for index, addr in enumerate(addresses)
        ]
        self._dead: list[WorkerLink] = []
        # Placement links are opened lazily, one per worker, and every
        # request/reply on them is serialised under this lock so a
        # background prefetch thread and the scoring thread can share
        # them safely.
        self._placement_links: dict[int, WorkerLink] = {}
        self._placement_lock = threading.Lock()
        # Replication links carry background strip copies on their own
        # connections (and their own accounting bucket), serialised
        # independently of the foreground placement plane.
        self._replication_links: dict[int, WorkerLink] = {}
        self._replication_lock = threading.Lock()
        # Rebalance links carry the membership plane: JOIN handshakes
        # and planned strip migrations, on their own connections and
        # their own accounting bucket so elasticity traffic is
        # attributable separately from failure-driven re-replication.
        self._rebalance_links: dict[int, WorkerLink] = {}
        self._rebalance_lock = threading.Lock()
        # Liveness state shared between the task plane, the heartbeat
        # monitor, and death listeners.
        self._state_lock = threading.Lock()
        self._dead_indices: set[int] = set()
        self._evicted_pending: set[int] = set()
        self._death_listeners: list[Callable[[int], None]] = []
        self._join_listeners: list[Callable[[int, dict], None]] = []
        self._hb_thread: threading.Thread | None = None
        self._hb_stop = threading.Event()
        self._hb_links: dict[int, WorkerLink] = {}
        self.n_tasks = 0
        self.n_results = 0
        self.n_reassigned = 0
        self.n_reconnect_rounds = 0
        self.n_heartbeats = 0
        self.n_evicted = 0
        self.n_joins = 0
        # Ticket-granular request/response scheduler: every request —
        # batch envelope, speculative envelope, or a pinned serving
        # request — gets a ticket; results are routed by ticket, so all
        # traffic kinds share the same windows, reassignment, and
        # eviction machinery.  Pinned tickets (``submit_request``)
        # target one specific worker and resolve *lost* instead of
        # being reassigned when that worker dies — the caller owns the
        # re-routing decision (the serving plane re-routes to a replica
        # strip holder).
        #
        # Tenancy: shared-queue tickets belong to *tenants* — named
        # fair-share queues picked by deterministic stride scheduling
        # (repro.cluster.tenancy).  Untagged submissions ride the
        # always-registered default tenant, whose queues are aliased to
        # the legacy ``_queue_real``/``_queue_spec`` attributes, so a
        # single-tenant coordinator schedules exactly as before.  The
        # plane lock serialises every ticket-plane mutation; blocking
        # receive steps hold it for at most one frame, so concurrent
        # tenant threads interleave at frame granularity.
        self._plane_lock = threading.RLock()
        self._tenants = TenantScheduler()
        self._ticket_tenants: dict[int, TenantState] = {}
        _default = self._tenants.state(None)
        self._next_ticket = 0
        self._queue_real: deque[int] = _default.real
        self._queue_spec: deque[int] = _default.spec
        self._queue_pinned: dict[int, deque[int]] = {}
        self._ticket_payloads: dict[int, bytes] = {}
        # Pinned tickets record their request frame type here; absence
        # means MSG_TASK (the shared-queue envelope default).
        self._ticket_types: dict[int, int] = {}
        self._ticket_results: dict[int, object] = {}
        self._ticket_errors: dict[int, Exception] = {}
        self._speculative_tickets: set[int] = set()
        self._cancelled_tickets: set[int] = set()
        self.n_speculative_tasks = 0
        self.n_discarded_results = 0
        self.n_requests = 0
        # Per-ticket lifecycle stamps (queued -> wired -> scored ->
        # consumed), recorded only while the tracer is enabled: each
        # consumed ticket becomes one "cluster.ticket" span.  Purely
        # observational — no scheduling decision ever reads them.
        self._ticket_times: dict[int, dict] = {}
        # Bytes spent by fleet_status polls: the poll links are
        # ephemeral (closed before the poll returns), so their ledgers
        # are folded in here instead of the link sweep above.
        self._poll_wire = {"telemetry_bytes_out": 0, "telemetry_bytes_in": 0}

    # -- fleet bookkeeping ---------------------------------------------

    @property
    def n_workers(self) -> int:
        """Workers registered (alive or not)."""
        return len(self._addresses)

    @property
    def n_live_workers(self) -> int:
        return len(self._channels)

    def worker_is_dead(self, worker_index: int) -> bool:
        with self._state_lock:
            return worker_index in self._dead_indices

    def live_worker_indices(self) -> tuple[int, ...]:
        """Registered workers not currently known to be dead."""
        with self._state_lock:
            return tuple(
                i for i in range(len(self._addresses))
                if i not in self._dead_indices
            )

    def add_death_listener(self, listener: Callable[[int], None]) -> None:
        """Call ``listener(worker_index)`` once per detected worker death.

        Listeners run on whichever thread detected the death (task
        plane, placement plane, or the heartbeat monitor) and must be
        quick and non-blocking — bookkeeping, not network I/O.
        """
        with self._state_lock:
            self._death_listeners.append(listener)

    def remove_death_listener(self, listener: Callable[[int], None]) -> None:
        """Unregister a death listener (no-op if absent)."""
        with self._state_lock:
            try:
                self._death_listeners.remove(listener)
            except ValueError:
                pass

    def add_join_listener(
        self, listener: Callable[[int, dict], None]
    ) -> None:
        """Call ``listener(worker_index, announce)`` on every admission.

        Unlike death listeners, join listeners run on the admitting
        thread *outside* the coordinator's plane locks, after the JOIN
        handshake succeeded — so they may perform placement I/O (the
        hook the placement layer uses to migrate strips onto the
        admitted worker).
        """
        with self._state_lock:
            self._join_listeners.append(listener)

    def remove_join_listener(
        self, listener: Callable[[int, dict], None]
    ) -> None:
        """Unregister a join listener (no-op if absent)."""
        with self._state_lock:
            try:
                self._join_listeners.remove(listener)
            except ValueError:
                pass

    def _mark_dead(self, worker_index: int) -> None:
        """Record a death and notify listeners (once per worker life)."""
        with self._state_lock:
            if worker_index in self._dead_indices:
                return
            self._dead_indices.add(worker_index)
            listeners = list(self._death_listeners)
        # Abort the worker's auxiliary links so any thread blocked on
        # them (placement fan-out, replication copy, strip migration)
        # wakes immediately.
        for registry in (
            self._placement_links,
            self._replication_links,
            self._rebalance_links,
        ):
            link = registry.get(worker_index)
            if link is not None:
                link.abort()
        for listener in listeners:
            listener(worker_index)

    def _revive_all(self) -> None:
        """Forget recorded deaths (fresh-batch / reconnect semantics)."""
        with self._state_lock:
            self._dead_indices.clear()
            self._evicted_pending.clear()

    def connect(self) -> None:
        """Eagerly connect and ping every worker."""
        for channel in self._channels:
            channel.link.request(MSG_PING, b"", MSG_PONG)
        self._ensure_heartbeat()

    def close(self) -> None:
        """Close every connection; the coordinator stays reusable."""
        self._stop_heartbeat()
        for channel in self._channels:
            channel.link.close()
        with self._placement_lock:
            links, self._placement_links = self._placement_links.values(), {}
        for link in links:
            link.close()
        with self._replication_lock:
            links, self._replication_links = (
                self._replication_links.values(), {},
            )
        for link in links:
            link.close()
        with self._rebalance_lock:
            links, self._rebalance_links = self._rebalance_links.values(), {}
        for link in links:
            link.close()

    def shutdown_workers(self) -> None:
        """Ask every live worker process to stop (examples, CI teardown)."""
        self._stop_heartbeat()
        for channel in self._channels:
            try:
                channel.link.request(MSG_SHUTDOWN, b"", MSG_OK)
            except (ProtocolError, OSError):
                pass
            channel.link.close()

    # -- heartbeat liveness --------------------------------------------

    def _ensure_heartbeat(self) -> None:
        """Start the liveness monitor (idempotent; no-op when disabled)."""
        if self.heartbeat_interval is None:
            return
        with self._state_lock:
            if self._hb_thread is not None and self._hb_thread.is_alive():
                return
            self._hb_stop = threading.Event()
            self._hb_thread = threading.Thread(
                target=self._heartbeat_loop,
                name="cluster-heartbeat",
                daemon=True,
            )
            self._hb_thread.start()

    def _stop_heartbeat(self) -> None:
        thread = self._hb_thread
        if thread is not None:
            self._hb_stop.set()
            thread.join(timeout=10.0)
            self._hb_thread = None
        with self._state_lock:
            links, self._hb_links = list(self._hb_links.values()), {}
        for link in links:
            link.close()

    def _heartbeat_loop(self) -> None:
        stop = self._hb_stop
        while not stop.wait(self.heartbeat_interval):
            for index, address in enumerate(self._addresses):
                if stop.is_set():
                    return
                if self.worker_is_dead(index):
                    continue
                link = self._hb_links.get(index)
                if link is None:
                    link = WorkerLink(
                        address,
                        connect_timeout=self.heartbeat_timeout,
                        io_timeout=self.heartbeat_timeout,
                        max_frame_bytes=self._link_options["max_frame_bytes"],
                        secret=self._link_options["secret"],
                        bucket="heartbeat",
                    )
                    # Registry writes are serialised with wire_stats
                    # readers; link I/O itself stays outside the lock.
                    with self._state_lock:
                        self._hb_links[index] = link
                try:
                    t0 = time.perf_counter()
                    link.request(MSG_PING, b"", MSG_PONG)
                    self.n_heartbeats += 1
                    tracer = get_tracer()
                    if tracer.enabled:
                        tracer.record_span(
                            "cluster.heartbeat",
                            t0,
                            time.perf_counter(),
                            cat="cluster",
                            worker=index,
                        )
                except (ProtocolError, OSError):
                    link.close()
                    self._evict(index)

    def _evict(self, worker_index: int) -> None:
        """A worker went silent: abort its links, reassign its work.

        Called by the heartbeat monitor.  The task plane's own thread
        performs the actual channel burial (``_handle_death``) when it
        next touches the channel — either immediately, woken by the
        abort, or at the next submission — so the channel list is only
        ever mutated from one thread.
        """
        self.n_evicted += 1
        get_tracer().event(
            "cluster.evict", cat="cluster", worker=worker_index
        )
        with self._state_lock:
            self._evicted_pending.add(worker_index)
        for channel in list(self._channels):
            if channel.index == worker_index:
                channel.link.abort()
        self._mark_dead(worker_index)

    # -- placement plane -----------------------------------------------

    def _placement_link(self, worker_index: int) -> WorkerLink:
        """The worker's placement link (caller holds ``_placement_lock``)."""
        link = self._placement_links.get(worker_index)
        if link is None:
            link = WorkerLink(
                self._addresses[worker_index],
                bucket="placement",
                **self._link_options,
            )
            self._placement_links[worker_index] = link
        return link

    def placement_request(
        self, worker_index: int, msg_type: int, payload: bytes
    ) -> bytes:
        """One serialised request/reply on a worker's placement plane.

        A transport failure marks the worker dead (notifying death
        listeners) before re-raising, so the caller retries against an
        already-updated placement.
        """
        self._ensure_heartbeat()
        with self._placement_lock:
            link = self._placement_link(worker_index)
            try:
                return link.request(msg_type, payload, MSG_OK)
            except (ProtocolError, OSError):
                link.close()
                self._placement_links.pop(worker_index, None)
                self._dead.append(link)
                self._mark_dead(worker_index)
                raise

    def placement_fan_out(
        self, worker_indices: Sequence[int], msg_type: int, payload: bytes
    ) -> dict[int, bytes]:
        """The same request to several workers, replies by worker index.

        Every request is *sent* before any reply is awaited, so the
        workers' strip computations (the per-block O(n²) work the
        placement layer distributes) run concurrently instead of one
        worker at a time; each link is strict request/reply FIFO, so
        the pairing stays unambiguous.

        Workers that fail mid-exchange are marked dead (death listeners
        run, so replica promotion happens *before* this returns) and
        simply omitted from the reply dict — the caller decides whether
        the survivors cover its needs or a retry is required.  An
        application error (``MSG_ERROR``) is re-raised, but only after
        every other sent link's reply has been received — leaving
        replies buffered would desync those links' request/reply FIFO
        for every later exchange.
        """
        self._ensure_heartbeat()
        with self._placement_lock:
            replies: dict[int, bytes] = {}
            sent: list[int] = []
            first_error: Exception | None = None
            for worker in worker_indices:
                link = self._placement_link(worker)
                try:
                    link.send(msg_type, payload)
                except (ProtocolError, OSError):
                    self._bury_placement_link(worker)
                    continue
                sent.append(worker)
            for worker in sent:
                link = self._placement_links.get(worker)
                if link is None:
                    continue
                try:
                    got, reply = link.recv()
                except RemoteTaskError as error:
                    # The error frame consumed this link's reply slot;
                    # the link stays in sync.  Keep draining the rest.
                    if first_error is None:
                        first_error = error
                    continue
                except (ProtocolError, OSError):
                    self._bury_placement_link(worker)
                    continue
                if got != MSG_OK:
                    # Unexpected frame type: this link's stream can no
                    # longer be trusted — bury it (a fresh link is made
                    # on next use) and keep draining the others.
                    self._bury_placement_link(worker)
                    if first_error is None:
                        first_error = ProtocolError(
                            f"worker {link.address} answered frame "
                            f"type {got} on the placement plane, expected OK"
                        )
                    continue
                replies[worker] = reply
            if first_error is not None:
                raise first_error
            return replies

    def _bury_placement_link(self, worker_index: int) -> None:
        """Close a failed placement link and record the death (caller
        holds ``_placement_lock``)."""
        link = self._placement_links.pop(worker_index, None)
        if link is not None:
            link.close()
            self._dead.append(link)
        self._mark_dead(worker_index)

    # -- replication plane ---------------------------------------------

    def replication_request(
        self, worker_index: int, msg_type: int, payload: bytes
    ) -> bytes:
        """One request/reply on a worker's replication connection.

        Strip copies ride their own per-worker link (bucket
        ``replication``) so background re-replication never interleaves
        with — or blocks behind — foreground placement requests.
        """
        with self._replication_lock:
            link = self._replication_links.get(worker_index)
            if link is None:
                link = WorkerLink(
                    self._addresses[worker_index],
                    bucket="replication",
                    **self._link_options,
                )
                self._replication_links[worker_index] = link
            try:
                return link.request(msg_type, payload, MSG_OK)
            except (ProtocolError, OSError):
                link.close()
                self._replication_links.pop(worker_index, None)
                self._dead.append(link)
                self._mark_dead(worker_index)
                raise

    # -- membership plane (elastic fleets) -----------------------------

    def rebalance_request(
        self,
        worker_index: int,
        msg_type: int,
        payload: bytes,
        expect: int = MSG_OK,
    ) -> bytes:
        """One request/reply on a worker's rebalance connection.

        The membership plane — JOIN handshakes and planned strip
        migrations — rides its own per-worker link (bucket
        ``rebalance``) so elasticity traffic never interleaves with
        foreground placement requests or failure-driven re-replication,
        and every migrated byte is attributable in the ledger.
        """
        with self._rebalance_lock:
            link = self._rebalance_links.get(worker_index)
            if link is None:
                link = WorkerLink(
                    self._addresses[worker_index],
                    bucket="rebalance",
                    **self._link_options,
                )
                self._rebalance_links[worker_index] = link
            try:
                return link.request(msg_type, payload, expect)
            except (ProtocolError, OSError):
                link.close()
                self._rebalance_links.pop(worker_index, None)
                self._dead.append(link)
                self._mark_dead(worker_index)
                raise

    def _bury_stale_links(self, worker_index: int) -> None:
        """Retire every auxiliary link to a worker being readmitted.

        A revived worker is a fresh process: links to its previous life
        (possibly aborted, never closed) must not be reused — a failure
        on one would mark the *new* life dead.  The buried links keep
        their byte ledgers via ``_dead``.
        """
        for lock, registry in (
            (self._placement_lock, self._placement_links),
            (self._replication_lock, self._replication_links),
            (self._rebalance_lock, self._rebalance_links),
        ):
            with lock:
                link = registry.pop(worker_index, None)
            if link is not None:
                link.close()
                self._dead.append(link)
        with self._state_lock:
            link = self._hb_links.pop(worker_index, None)
        if link is not None:
            link.close()
            self._dead.append(link)

    def admit_worker(self, address=None, index: int | None = None) -> int:
        """Admit a revived or newly added worker mid-run.

        With ``index`` set, the worker re-enters its previous identity
        (its address may have changed — a revived process can bind a
        new port); with ``index=None`` a brand-new worker is appended
        and ``n_workers`` grows.  The admission performs the MSG_JOIN
        handshake over the worker's rebalance link, installs a fresh
        task channel, clears the recorded death (so a *later* death
        notifies listeners again — the once-per-life guard is per
        life), and finally runs the registered join listeners with the
        worker's announce snapshot.

        Must be called from the task-plane thread (the thread that runs
        searches), like every other channel-list mutation.  Returns the
        admitted worker's index.
        """
        if address is None:
            if index is None:
                raise ValueError(
                    "admit_worker needs an address, an index, or both"
                )
            address = self._addresses[index]
        address = parse_address(address)
        with self._state_lock:
            if index is None:
                index = len(self._addresses)
                self._addresses.append(address)
            elif not 0 <= index < len(self._addresses):
                raise ValueError(
                    f"worker index {index} outside the registered fleet "
                    f"(0..{len(self._addresses) - 1}); omit index to add "
                    "a new worker"
                )
            else:
                self._addresses[index] = address
        self._bury_stale_links(index)
        reply = self.rebalance_request(
            index,
            MSG_JOIN,
            dump_payload({"index": index}),
            expect=MSG_JOIN_ACK,
        )
        announce = load_payload(reply)
        # Bury any channel still registered under the previous life
        # (killed but not yet purged) before clearing the death record.
        with self._plane_lock:
            for channel in [c for c in self._channels if c.index == index]:
                self._handle_death(channel)
            with self._state_lock:
                self._dead_indices.discard(index)
                self._evicted_pending.discard(index)
                listeners = list(self._join_listeners)
            link = WorkerLink(address, **self._link_options)
            self._channels.append(_TaskChannel(link, index))
            self.n_joins += 1
        get_tracer().event(
            "cluster.join",
            cat="cluster",
            worker=index,
            address=f"{address[0]}:{address[1]}",
        )
        for listener in listeners:
            listener(index, announce)
        with self._plane_lock:
            self._fill_windows()
        return index

    def queue_depth(self) -> int:
        """Tickets admitted but not yet resolved (queued + in flight).

        The backlog an autoscaling policy watches: queued batch and
        speculative envelopes across every tenant, queued pinned
        requests, and everything outstanding on the per-worker windows.
        """
        with self._plane_lock:
            return (
                sum(s.queued for s in self._tenants.states())
                + sum(len(q) for q in self._queue_pinned.values())
                + sum(len(c.outstanding) for c in self._channels)
            )

    # -- tenancy --------------------------------------------------------

    def register_tenant(
        self,
        name: str,
        weight: float = 1.0,
        max_queue_depth: int | None = None,
    ) -> None:
        """Register (or re-configure) a fair-share tenant.

        ``weight`` sets the tenant's envelope-throughput share under
        contention (stride scheduling over backlogged tenants);
        ``max_queue_depth`` bounds its *queued* (admitted, not yet
        shipped) tickets — real submissions past the bound raise
        :class:`~repro.cluster.tenancy.TenantAdmissionError`,
        speculative ones are born lost.  Idempotent by name: ledgers
        and queued work survive re-registration.
        """
        with self._plane_lock:
            self._tenants.register(name, weight, max_queue_depth)

    def unregister_tenant(self, name: str) -> None:
        """Drop a tenant: its queued/in-flight tickets are reset (the
        in-flight ones discarded on arrival) and its ledgers forgotten.
        The default tenant cannot be unregistered."""
        with self._plane_lock:
            try:
                state = self._tenants.state(name)
            except KeyError:
                return
            self._reset_tenant_plane(state)
            self._tenants.unregister(name)

    def tenant_queue_depths(self) -> dict[str, int]:
        """Tenant name → queued + in-flight tickets, for status polls
        and per-tenant autoscale advice."""
        with self._plane_lock:
            return self._tenants.queue_depths()

    def tenant_ledgers(self) -> dict[str, dict]:
        """Tenant name → flat scheduling/wire ledger (cumulative), the
        dict :func:`repro.telemetry.tenant_metrics` absorbs into
        tenant-labelled counters."""
        with self._plane_lock:
            return self._tenants.ledgers()

    def tenant_wire_stats(self, name: str | None = None) -> dict:
        """One tenant's wire ledger in the fleet ``wire_stats`` shape.

        Envelope bytes and task counters are the tenant's own; fleet
        size gauges ride along so engine ledger deltas keep their
        shape.  Placement/replication traffic is booked per placed
        cache, not per tenant — ``TenantBackend.wire_stats`` folds in
        the counters of the tenant's own caches.
        """
        with self._plane_lock:
            state = self._tenants.state(name)
            return {
                "n_workers": self.n_workers,
                "n_live_workers": self.n_live_workers,
                "tenant_weight": state.weight,
                "tenant_queue_depth": state.depth,
                "n_tasks": state.n_tasks,
                "n_results": state.n_results,
                "n_reassigned": state.n_reassigned,
                "n_speculative_tasks": state.n_speculative_tasks,
                "n_tenant_rejected": state.n_rejected,
                "n_tenant_resets": state.n_resets,
                "envelope_bytes_out": state.envelope_bytes_out,
                "envelope_bytes_in": state.envelope_bytes_in,
            }

    # -- wire accounting -----------------------------------------------

    def wire_stats(self) -> dict:
        """Aggregate per-bucket wire bytes across all links (ever used)."""
        totals_out: dict[str, int] = {}
        totals_in: dict[str, int] = {}
        auth_out = auth_in = 0
        links = [c.link for c in self._channels] + self._dead
        with self._state_lock:
            links += list(self._hb_links.values())
        with self._placement_lock:
            links += list(self._placement_links.values())
        with self._replication_lock:
            links += list(self._replication_links.values())
        with self._rebalance_lock:
            links += list(self._rebalance_links.values())
        for link in links:
            # dict() snapshots are single C-level copies (atomic under
            # the GIL); iterating the live dicts would race the
            # heartbeat/replicator threads' first write of a bucket.
            merge_counts(totals_out, dict(link.bytes_out))
            merge_counts(totals_in, dict(link.bytes_in))
            auth_out += link.auth_bytes_out
            auth_in += link.auth_bytes_in
        return {
            "n_workers": self.n_workers,
            "n_live_workers": self.n_live_workers,
            "n_tasks": self.n_tasks,
            "n_results": self.n_results,
            "n_reassigned": self.n_reassigned,
            "n_reconnect_rounds": self.n_reconnect_rounds,
            "n_heartbeats": self.n_heartbeats,
            "n_evicted": self.n_evicted,
            "n_joins": self.n_joins,
            "n_speculative_tasks": self.n_speculative_tasks,
            "n_discarded_results": self.n_discarded_results,
            "n_requests": self.n_requests,
            "envelope_bytes_out": totals_out.get("envelope", 0),
            "envelope_bytes_in": totals_in.get("envelope", 0),
            "serve_bytes_out": totals_out.get("serve", 0),
            "serve_bytes_in": totals_in.get("serve", 0),
            "placement_bytes_out": totals_out.get("placement", 0),
            "placement_bytes_in": totals_in.get("placement", 0),
            "heartbeat_bytes_out": totals_out.get("heartbeat", 0),
            "heartbeat_bytes_in": totals_in.get("heartbeat", 0),
            "replication_bytes_out": totals_out.get("replication", 0),
            "replication_bytes_in": totals_in.get("replication", 0),
            "rebalance_bytes_out": totals_out.get("rebalance", 0),
            "rebalance_bytes_in": totals_in.get("rebalance", 0),
            "telemetry_bytes_out": totals_out.get("telemetry", 0)
            + self._poll_wire["telemetry_bytes_out"],
            "telemetry_bytes_in": totals_in.get("telemetry", 0)
            + self._poll_wire["telemetry_bytes_in"],
            "auth_bytes_out": auth_out,
            "auth_bytes_in": auth_in,
        }

    def fleet_status(self, timeout: float = 5.0):
        """Poll every registered worker for a live telemetry snapshot.

        Safe mid-search: polling uses fresh short-deadline connections
        (see :func:`repro.cluster.status.poll_fleet`), never the task
        FIFOs, so it cannot desynchronise result routing or hang on a
        dead worker.  Returns a
        :class:`~repro.cluster.status.ClusterStatus`.
        """
        from repro.cluster.status import poll_fleet

        status = poll_fleet(
            [f"{host}:{port}" for host, port in self._addresses],
            timeout=timeout,
            secret=self._link_options["secret"],
            max_frame_bytes=self._link_options["max_frame_bytes"],
        )
        merge_counts(self._poll_wire, status.wire)
        # Stamp our own backlog on the snapshot so autoscaling policies
        # (``status.autoscale(...)``) see queue pressure and liveness in
        # one observation.
        status.queue_depth = self.queue_depth()
        status.tenants = self.tenant_queue_depths()
        return status

    # -- request/response plane ----------------------------------------
    #
    # A general request/response scheduler over the per-worker task
    # connections.  Every request — batch envelope, speculative
    # envelope, or a typed request pinned to one worker — is tracked by
    # an integer *ticket*.  Tickets move queued -> in-flight (on a
    # channel's FIFO window) -> resolved (result/error stored) and are
    # consumed by ``wait_ticket``/``poll_ticket``.  A worker death
    # requeues its in-flight envelope tickets (reassignment — envelope
    # scoring is pure, so rescoring anywhere is safe) but resolves its
    # pinned tickets *lost* (only the submitter knows which other
    # workers can answer them); a cancelled ticket's result is
    # discarded on arrival instead of requeued.  ``map_tasks_payloads``
    # is a thin layer over the same machinery, so serving requests,
    # speculative submissions and pipelined batches interleave on one
    # window without sequence numbers: the per-channel FIFO is the
    # truth.

    def submit_ticket(
        self,
        payload: bytes,
        speculative: bool = False,
        tenant: str | None = None,
    ) -> int:
        """Enqueue one envelope; non-blocking beyond the TCP send.

        The envelope is placed on a free window slot immediately when
        one exists; otherwise it waits in its tenant's queue and is
        flushed by the next ``pump``/receive.  Within a tenant, real
        (batch) tickets always outrank queued speculative ones; across
        tenants the stride scheduler picks whose head ships next.
        ``tenant=None`` is the default tenant.  A tenant at its
        admission bound raises
        :class:`~repro.cluster.tenancy.TenantAdmissionError` for real
        submissions; an over-bound speculative submission returns a
        born-lost ticket (``wait_ticket`` → ``None``) and the engine
        rescores it through the normal path.
        """
        with self._plane_lock:
            state = self._tenants.state(tenant)
            admitted = state.admit(speculative)
            self._ensure_heartbeat()
            self._ensure_channels()
            ticket = self._next_ticket
            self._next_ticket += 1
            if not admitted:
                return ticket  # born lost: over the admission bound
            self._ticket_payloads[ticket] = payload
            self._ticket_tenants[ticket] = state
            self._telemetry_open(
                ticket,
                "speculative" if speculative else "batch",
                tenant=state.name,
            )
            if speculative:
                self._speculative_tickets.add(ticket)
                self.n_speculative_tasks += 1
                state.n_speculative_tasks += 1
                state.spec.append(ticket)
            else:
                state.real.append(ticket)
            self._fill_windows()
            return ticket

    def submit_request(
        self, worker_index: int, msg_type: int, payload: bytes
    ) -> int:
        """Enqueue one typed request *pinned* to a specific worker.

        The generalisation of the envelope plane the serving layer
        rides: the frame type is the caller's (``MSG_SERVE_*``), the
        reply must echo that type, and the raw reply payload bytes are
        returned by ``wait_ticket``.  Unlike envelopes, a pinned
        request is never reassigned — the pinned worker dying (before
        or after the send) resolves the ticket **lost** (``wait_ticket``
        returns ``None``) and the caller re-routes, because only the
        caller knows which other workers hold the state the request
        needs.  A request pinned to an already-dead worker is born
        lost.
        """
        with self._plane_lock:
            self._ensure_heartbeat()
            self._ensure_channels()
            ticket = self._next_ticket
            self._next_ticket += 1
            if not any(c.index == worker_index for c in self._channels):
                return ticket  # born lost: the worker is already gone
            self._ticket_payloads[ticket] = payload
            self._ticket_types[ticket] = int(msg_type)
            self._telemetry_open(ticket, "pinned", worker=worker_index)
            self._queue_pinned.setdefault(worker_index, deque()).append(ticket)
            self._fill_windows()
            return ticket

    def pump(self) -> None:
        """Opportunistic, non-blocking progress: drain results that are
        already on the wire, then top the windows back up."""
        with self._plane_lock:
            self._purge_evicted()
            for channel in list(self._channels):
                while channel.outstanding and channel.link.readable():
                    if not self._receive_from(channel):
                        break
            self._fill_windows()

    def poll_ticket(self, ticket: int) -> tuple[bool, tuple | None]:
        """Non-blocking status: ``(done, result)``.

        ``(True, result)`` consumes a resolved ticket, ``(True, None)``
        reports a lost one (plane reset, cancelled), ``(False, None)``
        means still queued or in flight.  A stored worker application
        error is raised on consumption.
        """
        self.pump()
        with self._plane_lock:
            if ticket in self._ticket_results:
                self._telemetry_consume(ticket, "ok")
                self._ticket_tenants.pop(ticket, None)
                return True, self._ticket_results.pop(ticket)
            if ticket in self._ticket_errors:
                self._telemetry_consume(ticket, "error")
                self._ticket_tenants.pop(ticket, None)
                raise self._ticket_errors.pop(ticket)
            if self._ticket_known(ticket):
                return False, None
            self._telemetry_consume(ticket, "lost")
            self._ticket_tenants.pop(ticket, None)
            return True, None

    def wait_ticket(self, ticket: int) -> tuple | None:
        """Block until a ticket resolves; ``None`` if it was lost.

        Other tickets' results arriving first are stored for their own
        waiters; deaths en route trigger the normal reassignment path.
        A worker application error (``MSG_ERROR``) for *this* ticket is
        raised here — at consumption — so a wasted speculative envelope
        that happened to error never poisons an unrelated wait.
        """
        while True:
            # One bounded step per lock hold: concurrent tenant threads
            # interleave at frame granularity instead of serialising
            # behind one tenant's whole wait.
            with self._plane_lock:
                if ticket in self._ticket_results:
                    self._telemetry_consume(ticket, "ok")
                    self._ticket_tenants.pop(ticket, None)
                    return self._ticket_results.pop(ticket)
                if ticket in self._ticket_errors:
                    self._telemetry_consume(ticket, "error")
                    self._ticket_tenants.pop(ticket, None)
                    raise self._ticket_errors.pop(ticket)
                if not self._ticket_known(ticket):
                    self._telemetry_consume(ticket, "lost")
                    self._ticket_tenants.pop(ticket, None)
                    return None
                self._progress_toward(ticket)

    def cancel_ticket(self, ticket: int) -> None:
        """Best-effort cancel: a queued ticket is dropped before any
        byte ships; an in-flight one has its eventual result discarded
        on arrival (the per-channel FIFO cannot skip frames); a
        resolved one has its stored result dropped.  Waiting on a
        cancelled ticket afterwards reports it lost."""
        with self._plane_lock:
            for queue in (
                *(s.real for s in self._tenants.states()),
                *(s.spec for s in self._tenants.states()),
                *self._queue_pinned.values(),
            ):
                if ticket in queue:
                    queue.remove(ticket)
                    self._forget_ticket(ticket)
                    return
            self._ticket_results.pop(ticket, None)
            self._ticket_errors.pop(ticket, None)
            if any(ticket in c.outstanding for c in self._channels):
                self._cancelled_tickets.add(ticket)
                return
            self._forget_ticket(ticket)

    def map_tasks_payloads(
        self, payloads: Iterable[bytes], tenant: str | None = None
    ) -> list[tuple[list[float], int]]:
        """Score pre-serialized envelopes across the fleet, input order.

        ``payloads`` is consumed lazily: each envelope is sent as soon
        as it is produced, so the caller's next-chunk statistics
        materialise while workers score the current ones (the same
        async overlap the process pool gets from its lazy generator).
        Submission applies window backpressure — the producer is pulled
        only as fast as the fleet frees slots — and outstanding
        speculative tickets are serviced along the way (their results
        routed to their own tickets, never confused with the batch's).

        Mirrors the process pool's recovery contract: after a batch
        dies with ``WorkerCrashError`` the coordinator remains usable —
        the next call starts from a fresh set of links to every
        registered address (workers restarted on the same ports are
        picked up automatically).

        Isolation: a failing batch — a worker application error, a
        crash storm, a :class:`~repro.cluster.placement.StripLossError`
        surfacing through the lazy payload generator — resets only
        *this tenant's* slice of the plane.  Other tenants' queued and
        in-flight tickets, and the links they ride, are untouched.
        """
        with self._plane_lock:
            state = self._tenants.state(tenant)
            self._ensure_heartbeat()
            self._ensure_channels()
        tickets: list[int] = []
        try:
            for payload in payloads:
                tickets.append(self.submit_ticket(payload, tenant=tenant))
                self._apply_backpressure(state)
            results = [self.wait_ticket(ticket) for ticket in tickets]
        except Exception:
            # Leave no stale RESULT frames addressed to this batch
            # behind: drop the tenant's queued tickets and mark its
            # in-flight ones cancelled (discarded on arrival, so the
            # per-channel FIFOs stay in step).  Other tenants keep
            # scoring.
            self._reset_tenant_plane(state)
            raise
        if any(result is None for result in results):
            raise WorkerCrashError(
                "task results lost mid-batch (task plane was reset)"
            )
        return results

    # Internal helpers --------------------------------------------------

    def _ensure_channels(self) -> None:
        if not self._channels:
            self._revive_all()
            self._channels = [
                _TaskChannel(WorkerLink(addr, **self._link_options), index)
                for index, addr in enumerate(self._addresses)
            ]

    def _ticket_known(self, ticket: int) -> bool:
        """Queued or in flight (i.e. a result is still coming)."""
        return (
            any(
                ticket in s.real or ticket in s.spec
                for s in self._tenants.states()
            )
            or any(ticket in q for q in self._queue_pinned.values())
            or any(ticket in c.outstanding for c in self._channels)
        )

    def _forget_ticket(self, ticket: int) -> None:
        self._ticket_payloads.pop(ticket, None)
        self._ticket_types.pop(ticket, None)
        self._speculative_tickets.discard(ticket)
        self._cancelled_tickets.discard(ticket)
        self._ticket_times.pop(ticket, None)
        state = self._ticket_tenants.pop(ticket, None)
        if state is not None:
            state.in_flight.discard(ticket)

    # -- ticket lifecycle telemetry --------------------------------------
    #
    # queued -> wired (placed on a worker's window) -> scored (result
    # frame arrived) -> consumed (waiter took it).  Stamps exist only
    # while the tracer is enabled; each consumed ticket emits one
    # "cluster.ticket" span whose duration is queued->consumed, with
    # the intermediate latencies as attributes.  All helpers are cheap
    # no-ops when tracing is off (a lookup in an empty dict).

    def _telemetry_open(self, ticket: int, kind: str, **extra) -> None:
        if get_tracer().enabled:
            self._ticket_times[ticket] = {
                "kind": kind,
                "queued": time.perf_counter(),
                **extra,
            }

    def _telemetry_stamp(self, ticket: int, stage: str, **extra) -> None:
        times = self._ticket_times.get(ticket)
        if times is not None:
            times[stage] = time.perf_counter()
            times.update(extra)

    def _telemetry_consume(self, ticket: int, status: str) -> None:
        times = self._ticket_times.pop(ticket, None)
        if times is None:
            return
        tracer = get_tracer()
        if not tracer.enabled:
            return
        now = time.perf_counter()
        queued = times.get("queued", now)
        attrs = {
            "ticket": ticket,
            "kind": times.get("kind"),
            "status": status,
        }
        if "worker" in times:
            attrs["worker"] = times["worker"]
        if "tenant" in times:
            attrs["tenant"] = times["tenant"]
        if "wired" in times:
            attrs["wired_ms"] = (times["wired"] - queued) * 1e3
        if "scored" in times:
            attrs["scored_ms"] = (times["scored"] - queued) * 1e3
        tracer.record_span("cluster.ticket", queued, now, cat="cluster", **attrs)

    def _reset_tenant_plane(self, state: TenantState) -> None:
        """Failed batch: drop one tenant's queued and in-flight tickets.

        Queued tickets are forgotten outright (they report *lost* to
        their waiters — the engine rescores lost speculations through
        the normal path; the batch itself is already propagating its
        failure).  In-flight tickets are marked cancelled so their
        eventual result frames are discarded on arrival and the
        per-channel FIFOs never desynchronise.  Links, pinned requests
        and **other tenants' tickets are untouched** — the isolation
        guarantee that lets one tenant's ``StripLossError`` or crash
        storm abort only its own search on a shared fleet.
        """
        with self._plane_lock:
            state.n_resets += 1
            for queue in (state.real, state.spec):
                while queue:
                    self._forget_ticket(queue.popleft())
            for ticket in list(state.in_flight):
                self._cancelled_tickets.add(ticket)
            # Resolved-but-unconsumed results whose waiter is gone (the
            # batch raised partway through consuming them).
            for ticket, owner in list(self._ticket_tenants.items()):
                if owner is state and (
                    ticket in self._ticket_results
                    or ticket in self._ticket_errors
                ):
                    self._ticket_results.pop(ticket, None)
                    self._ticket_errors.pop(ticket, None)
                    self._forget_ticket(ticket)

    def _reset_task_plane(self) -> None:
        """Full reset (every tenant, every link) — the pre-tenancy
        failure behaviour, kept for teardown paths that really do want
        to abandon the whole plane."""
        with self._plane_lock:
            for channel in self._channels:
                channel.link.close()
                for ticket in channel.outstanding:
                    self._forget_ticket(ticket)
                channel.outstanding.clear()
            for queue in (
                *(s.real for s in self._tenants.states()),
                *(s.spec for s in self._tenants.states()),
                *self._queue_pinned.values(),
            ):
                while queue:
                    self._forget_ticket(queue.popleft())
            self._queue_pinned.clear()

    def _purge_evicted(self) -> None:
        """Bury channels the heartbeat monitor marked for eviction.

        Runs on the task-plane thread (the only mutator of
        ``_channels``); the monitor itself only aborts sockets and
        records indices.
        """
        with self._state_lock:
            evicted = set(self._evicted_pending)
        if not evicted:
            return
        for channel in [c for c in self._channels if c.index in evicted]:
            self._handle_death(channel)
        with self._state_lock:
            self._evicted_pending -= evicted

    def _reconnect_or_raise(self) -> None:
        """Rebuild the channel list from live addresses, or give up."""
        attempts = 0
        while not self._channels:
            if attempts >= self.retries:
                raise WorkerCrashError(
                    f"all {self.n_workers} cluster workers disconnected"
                    + (
                        f" after {attempts} reconnect "
                        f"round{'' if attempts == 1 else 's'}"
                        if attempts
                        else ""
                    )
                )
            attempts += 1
            self.n_reconnect_rounds += 1
            get_tracer().event(
                "cluster.reconnect_round", cat="cluster", attempt=attempts
            )
            self._revive_all()
            for index, address in enumerate(self._addresses):
                # Probe with a short-deadline link so a hung (accepting
                # but unresponsive) worker cannot wedge the reconnect
                # round for the full io_timeout.
                probe_options = dict(self._link_options)
                probe_options["io_timeout"] = self._link_options[
                    "connect_timeout"
                ]
                probe = WorkerLink(address, **probe_options)
                try:
                    probe.request(MSG_PING, b"", MSG_PONG)
                except (ProtocolError, OSError):
                    probe.close()
                    self._mark_dead(index)
                    continue
                probe.close()
                link = WorkerLink(address, **self._link_options)
                self._channels.append(_TaskChannel(link, index))

    def _handle_death(self, channel: _TaskChannel) -> None:
        """Bury a dead worker; its outstanding envelopes get reassigned.

        Reassignment requeues at the *front* (they were next in line);
        cancelled tickets are simply dropped — their work should not be
        re-done just to be discarded.  Pinned requests (in flight *or*
        still queued for this worker) resolve lost instead of being
        requeued: the caller re-routes them to another holder of the
        state they need.
        """
        if channel in self._channels:
            self._channels.remove(channel)
        self._dead.append(channel.link)
        channel.link.close()
        get_tracer().event(
            "cluster.worker_death",
            cat="cluster",
            worker=channel.index,
            address=channel.link.address,
            outstanding=len(channel.outstanding),
        )
        for ticket in reversed(channel.outstanding):
            if (
                ticket in self._cancelled_tickets
                or ticket in self._ticket_types
            ):
                self._forget_ticket(ticket)
                continue
            self.n_reassigned += 1
            state = self._ticket_tenants.get(ticket)
            if state is None:
                state = self._tenants.state(None)
            state.n_reassigned += 1
            state.in_flight.discard(ticket)
            if ticket in self._speculative_tickets:
                state.spec.appendleft(ticket)
            else:
                state.real.appendleft(ticket)
        channel.outstanding.clear()
        pinned = self._queue_pinned.pop(channel.index, None)
        if pinned:
            for ticket in pinned:
                self._forget_ticket(ticket)
        self._mark_dead(channel.index)

    def _fill_windows(self) -> None:
        """Place queued tickets on free window slots (never blocks).

        Pinned requests go first — they can only ever use their own
        worker's window, so letting shared-queue envelopes fill it
        would starve them.  Shared-queue envelopes then spread over
        whatever slots remain anywhere in the fleet, with *which
        tenant's* head ships next decided by the stride scheduler —
        weighted fair shares over the backlogged tenants (real before
        speculative within a tenant).  Only a shipped envelope charges
        its tenant's pass; discarding a cancelled ticket costs no
        share.
        """
        self._purge_evicted()
        self._fill_pinned_windows()
        while self._channels:
            state = self._tenants.select()
            if state is None:
                return
            channel = min(self._channels, key=len)
            if len(channel) >= self.window:
                return
            queue = state.real if state.real else state.spec
            ticket = queue[0]
            if ticket in self._cancelled_tickets:
                queue.popleft()
                self._forget_ticket(ticket)
                continue
            try:
                sent = channel.link.send(
                    MSG_TASK, self._ticket_payloads[ticket]
                )
            except (ProtocolError, OSError):
                self._handle_death(channel)
                continue
            queue.popleft()
            channel.outstanding.append(ticket)
            state.in_flight.add(ticket)
            state.n_tasks += 1
            state.envelope_bytes_out += sent
            self._tenants.charge(state)
            self.n_tasks += 1
            self._telemetry_stamp(ticket, "wired", worker=channel.index)

    def _fill_pinned_windows(self) -> None:
        """Send queued pinned requests down their worker's channel."""
        for worker_index in list(self._queue_pinned):
            queue = self._queue_pinned.get(worker_index)
            if not queue:
                self._queue_pinned.pop(worker_index, None)
                continue
            channel = next(
                (c for c in self._channels if c.index == worker_index), None
            )
            if channel is None:
                # The pinned worker is dead: every queued request for it
                # resolves lost; the caller re-routes via its own state.
                while queue:
                    self._forget_ticket(queue.popleft())
                self._queue_pinned.pop(worker_index, None)
                continue
            while queue and len(channel) < self.window:
                ticket = queue[0]
                if ticket in self._cancelled_tickets:
                    queue.popleft()
                    self._forget_ticket(ticket)
                    continue
                try:
                    channel.link.send(
                        self._ticket_types[ticket],
                        self._ticket_payloads[ticket],
                    )
                except (ProtocolError, OSError):
                    self._handle_death(channel)
                    break
                queue.popleft()
                channel.outstanding.append(ticket)
                self.n_requests += 1
                self._telemetry_stamp(ticket, "wired", worker=channel.index)

    def _apply_backpressure(self, state: TenantState | None = None) -> None:
        """Block until one tenant's real queue is fully on the windows.

        Lock scope mirrors ``wait_ticket``: one fill-or-receive step
        per hold, so a tenant waiting for a slot never starves another
        tenant's submissions.
        """
        if state is None:
            state = self._tenants.state(None)
        while True:
            with self._plane_lock:
                self._fill_windows()
                if not state.real:
                    return
                if not self._channels:
                    self._reconnect_or_raise()
                    continue
                candidates = [c for c in self._channels if len(c)]
                if candidates:
                    self._receive_from(min(candidates, key=len))

    def _progress_toward(self, ticket: int) -> None:
        """One blocking step toward resolving ``ticket``."""
        self._purge_evicted()
        for channel in list(self._channels):
            if ticket in channel.outstanding:
                self._receive_from(channel)
                return
        owner = self._ticket_tenants.get(ticket)
        if owner is not None and (
            ticket in owner.real or ticket in owner.spec
        ):
            self._fill_windows()
            if self._ticket_in_flight(ticket):
                return
            if not self._channels:
                self._reconnect_or_raise()
                return
            # Windows full everywhere: free a slot.
            candidates = [c for c in self._channels if len(c)]
            if candidates:
                self._receive_from(min(candidates, key=len))
            return
        for worker_index, queue in list(self._queue_pinned.items()):
            if ticket not in queue:
                continue
            self._fill_windows()
            if self._ticket_in_flight(ticket):
                return
            # Still queued: only its own worker's window can free a
            # slot for it (or the worker died and the fill resolved it
            # lost, in which case the waiter sees an unknown ticket).
            channel = next(
                (c for c in self._channels if c.index == worker_index), None
            )
            if channel is not None and len(channel):
                self._receive_from(channel)
            return

    def _ticket_in_flight(self, ticket: int) -> bool:
        return any(ticket in c.outstanding for c in self._channels)

    def _receive_from(self, channel: _TaskChannel) -> bool:
        """Pull one result frame off a channel; False if the worker died.

        The frame resolves whatever ticket is at the head of the
        channel's FIFO: results are stored for their waiter, worker
        application errors are stored and raised at consumption, and
        cancelled tickets' results are discarded (and counted)."""
        try:
            msg_type, payload = channel.link.recv()
        except RemoteTaskError as error:
            # The error frame consumed the head ticket's reply slot;
            # the link stays usable for the envelopes behind it.
            ticket = channel.outstanding.popleft()
            self.n_results += 1
            self._book_tenant_result(ticket, channel.link.last_frame_bytes_in)
            if ticket in self._cancelled_tickets:
                self.n_discarded_results += 1
                self._forget_ticket(ticket)
            else:
                self._ticket_errors[ticket] = error
                self._ticket_payloads.pop(ticket, None)
                self._ticket_types.pop(ticket, None)
                self._telemetry_stamp(ticket, "scored")
            return True
        except (ProtocolError, OSError):
            self._handle_death(channel)
            return False
        request_type = (
            self._ticket_types.get(channel.outstanding[0], MSG_TASK)
            if channel.outstanding
            else MSG_TASK
        )
        # Envelopes answer MSG_RESULT; a pinned request's reply echoes
        # the request's own frame type (so both directions book in the
        # same wire bucket) and stays raw payload bytes — only the
        # caller knows its encoding.
        expected = MSG_RESULT if request_type == MSG_TASK else request_type
        if msg_type != expected:
            raise ProtocolError(
                f"worker {channel.link.address} sent frame type {msg_type} "
                f"on the task plane (expected {expected})"
            )
        ticket = channel.outstanding.popleft()
        self.n_results += 1
        self._book_tenant_result(ticket, channel.link.last_frame_bytes_in)
        if ticket in self._cancelled_tickets:
            self.n_discarded_results += 1
            self._forget_ticket(ticket)
        else:
            self._ticket_results[ticket] = (
                decode_result(payload)
                if request_type == MSG_TASK
                else payload
            )
            self._ticket_payloads.pop(ticket, None)
            self._ticket_types.pop(ticket, None)
            self._telemetry_stamp(ticket, "scored")
        return True

    def _book_tenant_result(self, ticket: int, received: int) -> None:
        """Attribute one reply frame's bytes to its tenant's ledger.

        Pinned (serving) tickets carry no tenant — their traffic books
        in the ``serve`` bucket fleet-wide — so per-tenant envelope
        buckets sum exactly to the fleet's envelope totals.
        """
        state = self._ticket_tenants.get(ticket)
        if state is not None:
            state.envelope_bytes_in += received
            state.n_results += 1
            state.in_flight.discard(ticket)
