"""Coordinator: registers workers, pipelines envelopes, survives deaths.

The coordinator is the cluster twin of the process pool's parent side.
It keeps one **task connection** per worker, down which
:class:`~repro.engine.tasks.EngineTask` payloads are pipelined (up to
``window`` envelopes outstanding per worker — the worker answers in
FIFO order, so results need no sequence numbers), plus a lazily opened
**placement connection** per worker for the request/reply shard-
ownership traffic (kept separate so a placement request can never read
a task result off the stream, even when a prefetch thread warms
statistics while a batch is in flight).

Fault model, mirroring :class:`~repro.engine.backends.ProcessPoolBackend`:

* a worker that disconnects (crash, kill, network) has its outstanding
  envelopes **reassigned** to the surviving workers — task scoring is
  pure and deterministic, so rescoring is always safe;
* when *no* workers survive, the coordinator attempts up to ``retries``
  reconnect rounds over every registered address before raising
  :class:`~repro.engine.tasks.WorkerCrashError`;
* an application error reported by a worker (``MSG_ERROR``) is raised
  immediately — a task that poisons workers must not cascade through
  the fleet via reassignment.

Every link counts its wire bytes per accounting bucket (``envelope``
vs ``placement`` vs ``control``, headers included);
:meth:`Coordinator.wire_stats` aggregates them — the evidence
``BENCH_backends.json`` records.
"""

from __future__ import annotations

import socket
import threading
from collections import deque
from collections.abc import Iterable, Sequence

from repro.cluster.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    MSG_ERROR,
    MSG_OK,
    MSG_PING,
    MSG_PONG,
    MSG_RESULT,
    MSG_SHUTDOWN,
    MSG_TASK,
    ProtocolError,
    load_payload,
    recv_frame,
    send_frame,
    wire_category,
)
from repro.engine.tasks import WorkerCrashError, decode_result

__all__ = ["WorkerLink", "Coordinator", "parse_address", "RemoteTaskError"]


class RemoteTaskError(RuntimeError):
    """A worker reported an application error (not a transport fault)."""


def parse_address(address) -> tuple[str, int]:
    """Accept ``"host:port"`` strings or ``(host, port)`` pairs."""
    if isinstance(address, str):
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(
                f"worker address {address!r} is not of the form 'host:port'"
            )
        return host, int(port)
    host, port = address
    return str(host), int(port)


class WorkerLink:
    """One TCP connection to a worker, with per-bucket byte accounting."""

    def __init__(
        self,
        address,
        connect_timeout: float = 10.0,
        io_timeout: float | None = 120.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        bucket: str | None = None,
    ):
        self.host, self.port = parse_address(address)
        self.connect_timeout = connect_timeout
        self.io_timeout = io_timeout
        self.max_frame_bytes = max_frame_bytes
        # A link pinned to one plane books all its traffic there
        # (placement replies are generic MSG_OK frames, so the plane,
        # not the frame type, is the accounting truth).
        self.bucket = bucket
        self._sock: socket.socket | None = None
        self.bytes_out: dict[str, int] = {}
        self.bytes_in: dict[str, int] = {}

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def connect(self) -> None:
        if self._sock is not None:
            return
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )
        sock.settimeout(self.io_timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def send(self, msg_type: int, payload: bytes) -> None:
        self.connect()
        sent = send_frame(self._sock, msg_type, payload)
        bucket = self.bucket or wire_category(msg_type)
        self.bytes_out[bucket] = self.bytes_out.get(bucket, 0) + sent

    def recv(self) -> tuple[int, bytes]:
        if self._sock is None:
            raise ProtocolError("receiving on a closed link")
        msg_type, payload, received = recv_frame(self._sock, self.max_frame_bytes)
        bucket = self.bucket or wire_category(msg_type)
        self.bytes_in[bucket] = self.bytes_in.get(bucket, 0) + received
        if msg_type == MSG_ERROR:
            raise RemoteTaskError(
                f"worker {self.address} reported: {load_payload(payload)}"
            )
        return msg_type, payload

    def request(self, msg_type: int, payload: bytes, expect: int) -> bytes:
        """Strict request/reply exchange (placement + control planes)."""
        self.send(msg_type, payload)
        got, reply = self.recv()
        if got != expect:
            raise ProtocolError(
                f"worker {self.address} answered frame type {got}, "
                f"expected {expect}"
            )
        return reply


class _TaskChannel:
    """A worker's task-plane state: its link and outstanding envelopes."""

    def __init__(self, link: WorkerLink):
        self.link = link
        # (task index, payload) in submission order == reply order.
        self.outstanding: deque[tuple[int, bytes]] = deque()

    def __len__(self) -> int:
        return len(self.outstanding)


class Coordinator:
    """Owns the worker fleet: registration, pipelining, recovery.

    Parameters
    ----------
    workers:
        Worker addresses (``"host:port"`` strings or ``(host, port)``
        pairs).  At least one is required.
    retries:
        Reconnect rounds over all registered addresses attempted when
        every worker has died mid-batch, before
        :class:`~repro.engine.tasks.WorkerCrashError` is raised.
    window:
        Envelopes kept outstanding per worker; 2 keeps each worker
        busy while its previous result is in flight.
    """

    def __init__(
        self,
        workers,
        retries: int = 1,
        window: int = 2,
        connect_timeout: float = 10.0,
        io_timeout: float | None = 120.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ):
        addresses = [parse_address(w) for w in workers]
        if not addresses:
            raise ValueError("at least one worker address is required")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if window < 1:
            raise ValueError("window must be positive")
        self.retries = int(retries)
        self.window = int(window)
        self._link_options = dict(
            connect_timeout=connect_timeout,
            io_timeout=io_timeout,
            max_frame_bytes=max_frame_bytes,
        )
        self._addresses = addresses
        self._channels = [
            _TaskChannel(WorkerLink(addr, **self._link_options))
            for addr in addresses
        ]
        self._dead: list[WorkerLink] = []
        # Placement links are opened lazily, one per worker, and every
        # request/reply on them is serialised under this lock so a
        # background prefetch thread and the scoring thread can share
        # them safely.
        self._placement_links: dict[int, WorkerLink] = {}
        self._placement_lock = threading.Lock()
        self.n_tasks = 0
        self.n_results = 0
        self.n_reassigned = 0
        self.n_reconnect_rounds = 0

    # -- fleet bookkeeping ---------------------------------------------

    @property
    def n_workers(self) -> int:
        """Workers registered (alive or not)."""
        return len(self._addresses)

    @property
    def n_live_workers(self) -> int:
        return len(self._channels)

    def connect(self) -> None:
        """Eagerly connect and ping every worker."""
        for channel in self._channels:
            channel.link.request(MSG_PING, b"", MSG_PONG)

    def close(self) -> None:
        """Close every connection; the coordinator stays reusable."""
        for channel in self._channels:
            channel.link.close()
        with self._placement_lock:
            links, self._placement_links = self._placement_links.values(), {}
        for link in links:
            link.close()

    def shutdown_workers(self) -> None:
        """Ask every live worker process to stop (examples, CI teardown)."""
        for channel in self._channels:
            try:
                channel.link.request(MSG_SHUTDOWN, b"", MSG_OK)
            except (ProtocolError, OSError):
                pass
            channel.link.close()

    def _placement_link(self, worker_index: int) -> WorkerLink:
        """The worker's placement link (caller holds ``_placement_lock``)."""
        link = self._placement_links.get(worker_index)
        if link is None:
            link = WorkerLink(
                self._addresses[worker_index],
                bucket="placement",
                **self._link_options,
            )
            self._placement_links[worker_index] = link
        return link

    def placement_request(
        self, worker_index: int, msg_type: int, payload: bytes
    ) -> bytes:
        """One serialised request/reply on a worker's placement plane."""
        with self._placement_lock:
            return self._placement_link(worker_index).request(
                msg_type, payload, MSG_OK
            )

    def placement_fan_out(
        self, worker_indices: Sequence[int], msg_type: int, payload: bytes
    ) -> dict[int, bytes]:
        """The same request to several workers, replies by worker index.

        Every request is *sent* before any reply is awaited, so the
        workers' strip computations (the per-block O(n²) work the
        placement layer distributes) run concurrently instead of one
        worker at a time; each link is strict request/reply FIFO, so
        the pairing stays unambiguous.
        """
        with self._placement_lock:
            links = {w: self._placement_link(w) for w in worker_indices}
            for worker in worker_indices:
                links[worker].send(msg_type, payload)
            replies: dict[int, bytes] = {}
            for worker in worker_indices:
                got, reply = links[worker].recv()
                if got != MSG_OK:
                    raise ProtocolError(
                        f"worker {links[worker].address} answered frame "
                        f"type {got} on the placement plane, expected OK"
                    )
                replies[worker] = reply
            return replies

    # -- wire accounting -----------------------------------------------

    def wire_stats(self) -> dict:
        """Aggregate per-bucket wire bytes across all links (ever used)."""
        totals_out: dict[str, int] = {}
        totals_in: dict[str, int] = {}
        links = [c.link for c in self._channels] + self._dead
        with self._placement_lock:
            links += list(self._placement_links.values())
        for link in links:
            for bucket, count in link.bytes_out.items():
                totals_out[bucket] = totals_out.get(bucket, 0) + count
            for bucket, count in link.bytes_in.items():
                totals_in[bucket] = totals_in.get(bucket, 0) + count
        return {
            "n_workers": self.n_workers,
            "n_live_workers": self.n_live_workers,
            "n_tasks": self.n_tasks,
            "n_results": self.n_results,
            "n_reassigned": self.n_reassigned,
            "n_reconnect_rounds": self.n_reconnect_rounds,
            "envelope_bytes_out": totals_out.get("envelope", 0),
            "envelope_bytes_in": totals_in.get("envelope", 0),
            "placement_bytes_out": totals_out.get("placement", 0),
            "placement_bytes_in": totals_in.get("placement", 0),
        }

    # -- task plane ----------------------------------------------------

    def map_tasks_payloads(self, payloads: Iterable[bytes]) -> list[tuple[list[float], int]]:
        """Score pre-serialized envelopes across the fleet, input order.

        ``payloads`` is consumed lazily: each envelope is sent as soon
        as it is produced, so the caller's next-chunk statistics
        materialise while workers score the current ones (the same
        async overlap the process pool gets from its lazy generator).

        Mirrors the process pool's recovery contract: after a batch
        dies with ``WorkerCrashError`` the coordinator remains usable —
        the next call starts from a fresh set of links to every
        registered address (workers restarted on the same ports are
        picked up automatically).
        """
        if not self._channels:
            self._channels = [
                _TaskChannel(WorkerLink(addr, **self._link_options))
                for addr in self._addresses
            ]
        results: dict[int, tuple[list[float], int]] = {}
        requeue: deque[tuple[int, bytes]] = deque()
        index = 0
        try:
            for payload in payloads:
                self._submit((index, payload), results, requeue)
                index += 1
                self._drain_requeue(results, requeue)
            while any(self._channels) or requeue:
                self._drain_requeue(results, requeue)
                for channel in [c for c in self._channels if len(c)]:
                    self._receive_one(channel, results, requeue)
        except Exception:
            # Leave no stale RESULT frames behind on any socket: a
            # failed batch resets the task plane; links reconnect
            # lazily on the next call.
            self._reset_task_links()
            raise
        return [results[i] for i in range(index)]

    # Internal helpers --------------------------------------------------

    def _reset_task_links(self) -> None:
        for channel in self._channels:
            channel.link.close()
            channel.outstanding.clear()

    def _pick_channel(self) -> _TaskChannel:
        """Least-loaded live channel; reconnect the fleet if none."""
        attempts = 0
        while not self._channels:
            if attempts >= self.retries:
                raise WorkerCrashError(
                    f"all {self.n_workers} cluster workers disconnected"
                    + (
                        f" after {attempts} reconnect "
                        f"round{'' if attempts == 1 else 's'}"
                        if attempts
                        else ""
                    )
                )
            attempts += 1
            self.n_reconnect_rounds += 1
            for address in self._addresses:
                link = WorkerLink(address, **self._link_options)
                try:
                    link.request(MSG_PING, b"", MSG_PONG)
                except (ProtocolError, OSError):
                    link.close()
                    continue
                self._channels.append(_TaskChannel(link))
        return min(self._channels, key=len)

    def _handle_death(
        self,
        channel: _TaskChannel,
        requeue: deque[tuple[int, bytes]],
    ) -> None:
        """Bury a dead worker; its outstanding envelopes get reassigned."""
        if channel in self._channels:
            self._channels.remove(channel)
        self._dead.append(channel.link)
        channel.link.close()
        self.n_reassigned += len(channel.outstanding)
        requeue.extend(channel.outstanding)
        channel.outstanding.clear()

    def _submit(
        self,
        item: tuple[int, bytes],
        results: dict[int, tuple[list[float], int]],
        requeue: deque[tuple[int, bytes]],
    ) -> None:
        while True:
            channel = self._pick_channel()
            if len(channel) >= self.window:
                if not self._receive_one(channel, results, requeue):
                    continue  # that worker died; pick another
            try:
                channel.link.send(MSG_TASK, item[1])
            except (ProtocolError, OSError):
                self._handle_death(channel, requeue)
                continue
            channel.outstanding.append(item)
            self.n_tasks += 1
            return

    def _receive_one(
        self,
        channel: _TaskChannel,
        results: dict[int, tuple[list[float], int]],
        requeue: deque[tuple[int, bytes]],
    ) -> bool:
        """Pull one result off a channel; False if the worker died."""
        try:
            msg_type, payload = channel.link.recv()
        except RemoteTaskError:
            raise
        except (ProtocolError, OSError):
            self._handle_death(channel, requeue)
            return False
        if msg_type != MSG_RESULT:
            raise ProtocolError(
                f"worker {channel.link.address} sent frame type {msg_type} "
                "on the task plane"
            )
        index, _ = channel.outstanding.popleft()
        results[index] = decode_result(payload)
        self.n_results += 1
        return True

    def _drain_requeue(
        self,
        results: dict[int, tuple[list[float], int]],
        requeue: deque[tuple[int, bytes]],
    ) -> None:
        while requeue:
            self._submit(requeue.popleft(), results, requeue)
