"""Networked evaluation workers with placement-aware shard ownership.

``repro.cluster`` extends the engine's distribution story from one
machine (the ``processes`` backend of :mod:`repro.engine.backends`) to
a fleet of networked nodes, following the paper's IoT premise — many
small hosts, computation brought to the data, compact statistics on
the wire — and the design rule every layer below already obeys:
**ship statistics, never raw data.**

The pieces, bottom up:

* :mod:`~repro.cluster.protocol` — length-prefixed TCP framing with
  loud failure modes (garbage, truncation, oversized lengths);
* :class:`~repro.cluster.worker.WorkerServer` — one node: scores
  :class:`~repro.engine.tasks.EngineTask` envelopes with the exact
  serial arithmetic, and owns resident row strips of the sharded Gram
  layout; runnable via ``python -m repro.cluster.worker --port N``;
* :class:`~repro.cluster.coordinator.Coordinator` — registers workers,
  pipelines envelope submission, aggregates op counters exactly, and
  reassigns a dead worker's outstanding envelopes to the survivors
  (:class:`~repro.engine.tasks.WorkerCrashError` once the whole fleet
  is gone and reconnect rounds are exhausted); with
  ``heartbeat_interval`` set, a monitor thread evicts *hung* workers
  (silent, not just disconnected) mid-pipeline, and with ``secret``
  set every frame on every link carries a shared-secret HMAC trailer
  (tampered/replayed/unauthenticated frames rejected loudly);
* :class:`~repro.cluster.backend.SocketBackend` — the
  ``backend="sockets"`` registry entry (``supports_tasks = True``), so
  every engine-driven search gains networked execution with no API
  change beyond ``backend=``/``workers=``;
* :mod:`~repro.cluster.placement` — :class:`ShardPlacement` pins each
  block-row strip to ``replication`` holding workers (default 2);
  strips are built, centred and kept **resident worker-side**, with
  only O(n) vectors and scalars travelling per block, bit-identical to
  the in-process sharded caches.  A dead strip owner is replaced by
  promoting a replica (no rebuild, ``n_gathers`` still 0) and the
  replication factor is restored by background re-replication;
  ``replication=1`` falls back to an *explicit* rebuild on a survivor,
  and total strip loss raises :class:`StripLossError`.

The fleet is **elastic**: a revived or brand-new worker announces
itself over the ``MSG_JOIN`` handshake and is admitted mid-search by
``Coordinator.admit_worker``; :func:`~repro.cluster.placement.rendezvous_owners`
gives strips a consistent-hash (bounded-load rendezvous) home so
membership changes move only ~``strips / workers`` strips;
``ShardPlacement.rebalance`` emits an explicit
:class:`~repro.cluster.placement.MovementPlan` and
``PlacedGramCache.rebalance`` executes it by migrating resident strips
over dedicated ``rebalance``-bucket links without interrupting
in-flight scoring (results stay bit-identical throughout).  The
autoscaling hook — :class:`~repro.cluster.status.QueueDepthPolicy`
observing ``Coordinator.queue_depth()`` via ``fleet_status()`` —
closes the loop by recommending grow/shrink as
:class:`~repro.cluster.status.ScalingDecision` advice.

The fleet is **multi-tenant** (:mod:`~repro.cluster.tenancy`):
``SocketBackend.for_tenant(name, weight=...)`` returns a
:class:`~repro.cluster.tenancy.TenantBackend` view whose envelopes
ride that tenant's fair-share queue (deterministic stride scheduling
in :class:`~repro.cluster.tenancy.TenantScheduler`), whose queued
depth is bounded by admission control
(:exc:`~repro.cluster.tenancy.TenantAdmissionError`), whose wire
bytes book to per-tenant ledgers, and whose placed strips live in a
per-tenant worker-side namespace — so many concurrent searches share
one fleet with hard isolation: one tenant's failure resets only its
own tickets, never a bystander's.

Parity invariant (enforced by ``tests/test_cluster.py`` and the
backend benchmark): a search over real sockets returns bit-identical
scores and exact op ledgers versus the serial reference — identical
optimum, ``n_gathers == 0`` under placement, wire bytes accounted on
every :class:`~repro.engine.core.SearchResult`.
"""

from repro.cluster.backend import SocketBackend
from repro.cluster.coordinator import Coordinator, RemoteTaskError, WorkerLink
from repro.cluster.local import LocalWorkers, spawn_local_workers
from repro.cluster.placement import (
    MovementPlan,
    PlacedBlockStatsCache,
    PlacedGramCache,
    PlacedLandmarkGramCache,
    PlacedLandmarkStatsCache,
    ShardPlacement,
    StripLossError,
    StripMove,
    rendezvous_owners,
)
from repro.cluster.protocol import (
    AuthenticationError,
    ConnectionClosed,
    FrameAuth,
    ProtocolError,
    encode_frame,
    recv_frame,
    send_frame,
)
from repro.cluster.status import QueueDepthPolicy, ScalingDecision
from repro.cluster.tenancy import (
    DEFAULT_TENANT,
    TenantAdmissionError,
    TenantBackend,
    TenantScheduler,
    TenantState,
)
from repro.cluster.worker import WorkerServer

__all__ = [
    "AuthenticationError",
    "Coordinator",
    "ConnectionClosed",
    "DEFAULT_TENANT",
    "FrameAuth",
    "LocalWorkers",
    "MovementPlan",
    "PlacedBlockStatsCache",
    "PlacedGramCache",
    "PlacedLandmarkGramCache",
    "PlacedLandmarkStatsCache",
    "ProtocolError",
    "QueueDepthPolicy",
    "RemoteTaskError",
    "ScalingDecision",
    "ShardPlacement",
    "SocketBackend",
    "StripLossError",
    "StripMove",
    "TenantAdmissionError",
    "TenantBackend",
    "TenantScheduler",
    "TenantState",
    "WorkerLink",
    "WorkerServer",
    "encode_frame",
    "recv_frame",
    "rendezvous_owners",
    "send_frame",
    "spawn_local_workers",
]
