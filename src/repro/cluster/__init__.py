"""Networked evaluation workers with placement-aware shard ownership.

``repro.cluster`` extends the engine's distribution story from one
machine (the ``processes`` backend of :mod:`repro.engine.backends`) to
a fleet of networked nodes, following the paper's IoT premise — many
small hosts, computation brought to the data, compact statistics on
the wire — and the design rule every layer below already obeys:
**ship statistics, never raw data.**

The pieces, bottom up:

* :mod:`~repro.cluster.protocol` — length-prefixed TCP framing with
  loud failure modes (garbage, truncation, oversized lengths);
* :class:`~repro.cluster.worker.WorkerServer` — one node: scores
  :class:`~repro.engine.tasks.EngineTask` envelopes with the exact
  serial arithmetic, and owns resident row strips of the sharded Gram
  layout; runnable via ``python -m repro.cluster.worker --port N``;
* :class:`~repro.cluster.coordinator.Coordinator` — registers workers,
  pipelines envelope submission, aggregates op counters exactly, and
  reassigns a dead worker's outstanding envelopes to the survivors
  (:class:`~repro.engine.tasks.WorkerCrashError` once the whole fleet
  is gone and reconnect rounds are exhausted);
* :class:`~repro.cluster.backend.SocketBackend` — the
  ``backend="sockets"`` registry entry (``supports_tasks = True``), so
  every engine-driven search gains networked execution with no API
  change beyond ``backend=``/``workers=``;
* :mod:`~repro.cluster.placement` — :class:`ShardPlacement` pins each
  block-row strip to an owning worker; strips are built, centred and
  kept **resident worker-side**, with only O(n) vectors and scalars
  travelling per block, bit-identical to the in-process sharded caches.

Parity invariant (enforced by ``tests/test_cluster.py`` and the
backend benchmark): a search over real sockets returns bit-identical
scores and exact op ledgers versus the serial reference — identical
optimum, ``n_gathers == 0`` under placement, wire bytes accounted on
every :class:`~repro.engine.core.SearchResult`.
"""

from repro.cluster.backend import SocketBackend
from repro.cluster.coordinator import Coordinator, RemoteTaskError, WorkerLink
from repro.cluster.local import LocalWorkers, spawn_local_workers
from repro.cluster.placement import (
    PlacedBlockStatsCache,
    PlacedGramCache,
    ShardPlacement,
)
from repro.cluster.protocol import (
    ConnectionClosed,
    ProtocolError,
    recv_frame,
    send_frame,
)
from repro.cluster.worker import WorkerServer

__all__ = [
    "Coordinator",
    "ConnectionClosed",
    "LocalWorkers",
    "PlacedBlockStatsCache",
    "PlacedGramCache",
    "ProtocolError",
    "RemoteTaskError",
    "ShardPlacement",
    "SocketBackend",
    "WorkerLink",
    "WorkerServer",
    "recv_frame",
    "send_frame",
    "spawn_local_workers",
]
