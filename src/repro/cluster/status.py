"""Live fleet introspection: poll workers' telemetry snapshots.

``MSG_TELEMETRY`` is a request/reply frame any worker answers on any
connection from its always-on counters and resident state — liveness,
queue/op counts, placed strip residency, serving versions, and (when
the worker runs with ``--trace``) its recent spans.  This module turns
that frame into:

* :func:`poll_fleet` — poll a list of addresses concurrently over
  **fresh, short-deadline connections** (never the task-plane FIFO
  links, so polling a fleet mid-search cannot desynchronise result
  routing, and a dead or hung worker costs one bounded timeout instead
  of a hang);
* :class:`ClusterStatus` — the aggregated result (one snapshot or
  ``None`` per worker) with a plain-text table renderer;
* the autoscaling hook — :class:`QueueDepthPolicy` (or any object with
  its ``recommend`` signature) turns an observed ticket backlog and
  live-worker count into a :class:`ScalingDecision` (grow / shrink /
  hold).  ``Coordinator.fleet_status()`` stamps its own
  ``queue_depth`` onto the returned status, so
  ``status.autoscale(policy)`` is the whole control loop's sensor +
  decision step; *acting* on a grow decision is
  ``Coordinator.admit_worker``, on a shrink decision simply stopping a
  worker (the placement layer migrates/promotes around it);
* a CLI::

      python -m repro.cluster.status host:9701 host:9702
      python -m repro.cluster.status host:9701 --json

  which exits 0 when every polled worker answered and 1 otherwise
  (usable as a health check).

``Coordinator.fleet_status()`` wraps :func:`poll_fleet` over the
fleet's registered addresses with the fleet's auth settings.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import os
import sys
import threading
import time

from repro.cluster.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    MSG_TELEMETRY,
    ProtocolError,
    dump_payload,
    load_payload,
)

__all__ = [
    "ClusterStatus",
    "QueueDepthPolicy",
    "ScalingDecision",
    "main",
    "poll_fleet",
    "poll_worker",
]


@dataclasses.dataclass(frozen=True)
class ScalingDecision:
    """What an autoscaling policy recommends for the fleet, and why.

    Pure advice: nothing in the cluster acts on it automatically.  A
    control loop that trusts the policy calls
    ``coordinator.admit_worker(...)`` on ``"grow"`` and stops a worker
    on ``"shrink"``; ``"hold"`` means do nothing this round.
    """

    #: ``"grow"``, ``"shrink"`` or ``"hold"``.
    action: str
    #: Human-readable justification (shows up in logs / status output).
    reason: str
    #: The queue depth the decision was made from.
    queue_depth: int
    #: The live worker count the decision was made from.
    n_live: int


class QueueDepthPolicy:
    """Autoscale on ticket backlog per live worker.

    The coordinator's :meth:`~repro.cluster.coordinator.Coordinator.queue_depth`
    counts every submitted-but-unfinished envelope (queued + in
    flight).  Dividing by the live worker count gives the backlog each
    worker still has to chew through; this policy recommends growth
    when that ratio exceeds ``queue_high``, shrink when it falls below
    ``queue_low`` (and the fleet is above ``min_workers``), and hold
    otherwise.  Bounds are inclusive-safe: a fleet at ``max_workers``
    never gets a grow recommendation, one at ``min_workers`` never a
    shrink.
    """

    def __init__(
        self,
        queue_high: float = 4.0,
        queue_low: float = 0.5,
        min_workers: int = 1,
        max_workers: int | None = None,
    ):
        if queue_low < 0 or queue_high <= queue_low:
            raise ValueError(
                "need 0 <= queue_low < queue_high, got "
                f"queue_low={queue_low}, queue_high={queue_high}"
            )
        if min_workers < 1:
            raise ValueError(f"min_workers must be >= 1, got {min_workers}")
        if max_workers is not None and max_workers < min_workers:
            raise ValueError(
                f"max_workers ({max_workers}) < min_workers ({min_workers})"
            )
        self.queue_high = float(queue_high)
        self.queue_low = float(queue_low)
        self.min_workers = int(min_workers)
        self.max_workers = None if max_workers is None else int(max_workers)

    def recommend(self, queue_depth: int, n_live: int) -> ScalingDecision:
        """Turn one observation into a grow/shrink/hold decision."""
        queue_depth = int(queue_depth)
        n_live = int(n_live)
        if n_live < 1:
            # An empty fleet can't score anything: always grow back to
            # the floor, whatever the queue says.
            return ScalingDecision(
                "grow",
                f"no live workers (min_workers={self.min_workers})",
                queue_depth,
                n_live,
            )
        per_worker = queue_depth / n_live
        if per_worker > self.queue_high and (
            self.max_workers is None or n_live < self.max_workers
        ):
            return ScalingDecision(
                "grow",
                f"backlog {per_worker:.1f}/worker above "
                f"queue_high={self.queue_high:g}",
                queue_depth,
                n_live,
            )
        if per_worker < self.queue_low and n_live > self.min_workers:
            return ScalingDecision(
                "shrink",
                f"backlog {per_worker:.1f}/worker below "
                f"queue_low={self.queue_low:g}",
                queue_depth,
                n_live,
            )
        return ScalingDecision(
            "hold",
            f"backlog {per_worker:.1f}/worker within "
            f"[{self.queue_low:g}, {self.queue_high:g}]",
            queue_depth,
            n_live,
        )

    def workers_wanted(self, queue_depth: int, n_live: int) -> int:
        """Target fleet size if the backlog were spread at ``queue_high``.

        A convenience for control loops that add several workers per
        round instead of one: clamped to ``[min_workers, max_workers]``.
        """
        wanted = max(
            self.min_workers,
            math.ceil(int(queue_depth) / max(self.queue_high, 1e-9)),
        )
        if self.max_workers is not None:
            wanted = min(wanted, self.max_workers)
        return max(wanted, 1)


class ClusterStatus:
    """Result of one fleet poll: per-worker snapshots, ``None`` = dead.

    ``workers[i]`` is the telemetry snapshot dict answered by
    ``addresses[i]``, or ``None`` when that worker could not be
    reached (connection refused, timed out, protocol garbage) within
    the poll deadline.
    """

    def __init__(
        self,
        addresses: list[str],
        workers: list[dict | None],
        wire: dict | None = None,
        queue_depth: int = 0,
        tenants: dict[str, int] | None = None,
    ):
        self.addresses = list(addresses)
        self.workers = list(workers)
        #: Bytes this poll itself cost, summed over every poll link —
        #: the ``telemetry`` wire bucket's evidence that introspection
        #: traffic is accounted separately from the task planes.
        self.wire = dict(wire or {})
        #: Submitted-but-unfinished envelopes at poll time (queued +
        #: in flight).  ``Coordinator.fleet_status()`` stamps its own
        #: backlog here; a bare :func:`poll_fleet` has no coordinator
        #: to ask, so it stays 0.
        self.queue_depth = int(queue_depth)
        #: Tenant name -> that tenant's backlog (queued + in flight) at
        #: poll time — the per-tenant decomposition of ``queue_depth``.
        #: Stamped by ``Coordinator.fleet_status()``; empty for a bare
        #: :func:`poll_fleet`.
        self.tenants = dict(tenants or {})

    @property
    def n_workers(self) -> int:
        return len(self.addresses)

    @property
    def n_live(self) -> int:
        return sum(1 for snapshot in self.workers if snapshot is not None)

    @property
    def all_live(self) -> bool:
        return self.n_live == self.n_workers

    def live(self) -> dict[str, dict]:
        """Address -> snapshot for the workers that answered."""
        return {
            address: snapshot
            for address, snapshot in zip(self.addresses, self.workers)
            if snapshot is not None
        }

    def counter(self, name: str) -> int:
        """Sum a metrics counter across every live worker."""
        total = 0
        for snapshot in self.workers:
            if snapshot is None:
                continue
            counters = snapshot.get("metrics", {}).get("counters", {})
            total += sum(
                value
                for key, value in counters.items()
                if key == name or key.startswith(name + "{")
            )
        return int(total)

    def autoscale(self, policy) -> ScalingDecision:
        """Ask ``policy`` what this snapshot says the fleet should do.

        ``policy`` is anything with
        ``recommend(queue_depth=..., n_live=...)`` — in-tree that is
        :class:`QueueDepthPolicy`, but a deployment can plug in its
        own (cost-aware, time-of-day, ...) without the cluster caring.
        """
        return policy.recommend(
            queue_depth=self.queue_depth, n_live=self.n_live
        )

    def to_dict(self) -> dict:
        return {
            "n_workers": self.n_workers,
            "n_live": self.n_live,
            "queue_depth": self.queue_depth,
            "tenants": dict(self.tenants),
            "workers": {
                address: snapshot
                for address, snapshot in zip(self.addresses, self.workers)
            },
        }

    def format_table(self) -> str:
        """Human-readable per-worker table (the CLI's default output)."""
        header = (
            f"{'worker':<22} {'state':<6} {'pid':>7} {'up_s':>8} "
            f"{'conns':>5} {'tasks':>8} {'strips':>6} {'res_mb':>8} "
            f"{'serving':<16}"
        )
        lines = [header, "-" * len(header)]
        for address, snapshot in zip(self.addresses, self.workers):
            if snapshot is None:
                lines.append(f"{address:<22} {'DEAD':<6}")
                continue
            counters = snapshot.get("metrics", {}).get("counters", {})
            placement = snapshot.get("placement") or {}
            serving = snapshot.get("serving") or {}
            resident = placement.get("resident_bytes", 0) + serving.get(
                "resident_bytes", 0
            )
            versions = sorted(serving.get("versions", {}))
            lines.append(
                f"{address:<22} {'live':<6} "
                f"{snapshot.get('pid', 0):>7d} "
                f"{snapshot.get('uptime_s', 0.0):>8.1f} "
                f"{snapshot.get('n_connections', 0):>5d} "
                f"{int(counters.get('worker.tasks_scored', 0)):>8d} "
                f"{placement.get('n_strips', 0):>6d} "
                f"{resident / 1e6:>8.2f} "
                f"{('v' + ','.join(map(str, versions))) if versions else '-':<16}"
            )
        lines.append(f"{self.n_live}/{self.n_workers} live")
        if self.tenants:
            backlog = ", ".join(
                f"{name}={depth}" for name, depth in sorted(self.tenants.items())
            )
            lines.append(f"tenant backlog: {backlog}")
        return "\n".join(lines)


def poll_worker(
    address: str,
    timeout: float = 5.0,
    secret: str | bytes | None = None,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    wire: dict | None = None,
) -> dict | None:
    """Poll one worker; ``None`` if it cannot answer within ``timeout``.

    Opens a fresh connection (its own accounting bucket via the
    telemetry frame type) so an in-flight search's task links are
    never touched, and closes it again — a poll leaves no state
    behind on either side.  When ``wire`` is given, the poll's own
    bytes are added to its ``bytes_out`` / ``bytes_in`` entries.
    """
    from repro.cluster.coordinator import WorkerLink

    link = WorkerLink(
        address,
        connect_timeout=timeout,
        io_timeout=timeout,
        max_frame_bytes=max_frame_bytes,
        secret=secret,
    )
    try:
        reply = link.request(MSG_TELEMETRY, dump_payload({}), MSG_TELEMETRY)
        return load_payload(reply)
    except (ProtocolError, OSError, RuntimeError):
        # Connection refused / timed out / garbage / MSG_ERROR: the
        # worker is dead or unreachable for polling purposes.
        return None
    finally:
        if wire is not None:
            wire["bytes_out"] = wire.get("bytes_out", 0) + sum(
                link.bytes_out.values()
            )
            wire["bytes_in"] = wire.get("bytes_in", 0) + sum(
                link.bytes_in.values()
            )
        link.close()


def poll_fleet(
    addresses,
    timeout: float = 5.0,
    secret: str | bytes | None = None,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> ClusterStatus:
    """Poll every address concurrently; never blocks past the deadline.

    Each worker is polled on its own thread with ``timeout``-bounded
    connect and IO, so the whole poll costs at most roughly one
    timeout even when several workers are dead or hung — the property
    that makes it safe to run against a faulting fleet mid-search.
    """
    addresses = [
        a if isinstance(a, str) else f"{a[0]}:{a[1]}" for a in addresses
    ]
    results: list[dict | None] = [None] * len(addresses)
    wires: list[dict] = [{} for _ in addresses]

    def poll(index: int, address: str) -> None:
        results[index] = poll_worker(
            address,
            timeout=timeout,
            secret=secret,
            max_frame_bytes=max_frame_bytes,
            wire=wires[index],
        )

    threads = [
        threading.Thread(target=poll, args=(i, a), daemon=True)
        for i, a in enumerate(addresses)
    ]
    for thread in threads:
        thread.start()
    # connect + request + reply, each timeout-bounded; the deadline
    # below is a backstop, not the steady-state cost (live workers
    # answer in milliseconds).
    deadline = time.monotonic() + 3.0 * timeout + 1.0
    for thread in threads:
        thread.join(max(0.0, deadline - time.monotonic()))
    wire = {
        "telemetry_bytes_out": sum(w.get("bytes_out", 0) for w in wires),
        "telemetry_bytes_in": sum(w.get("bytes_in", 0) for w in wires),
    }
    return ClusterStatus(addresses, results, wire=wire)


def main(argv: list[str] | None = None) -> int:
    """CLI: ``python -m repro.cluster.status host:port [host:port ...]``."""
    parser = argparse.ArgumentParser(
        description="poll repro.cluster workers for live telemetry snapshots"
    )
    parser.add_argument(
        "workers",
        nargs="+",
        help="worker addresses (host:port), as announced on worker stdout",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        help="per-worker connect/IO deadline in seconds (default: 5)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the full snapshot document instead of the table",
    )
    parser.add_argument(
        "--secret-file",
        default=None,
        help=(
            "path to a file holding the fleet's shared HMAC secret; the "
            "REPRO_CLUSTER_SECRET environment variable is the argv-free "
            "alternative"
        ),
    )
    args = parser.parse_args(argv)
    secret: str | None
    if args.secret_file is not None:
        with open(args.secret_file, "r", encoding="utf-8") as handle:
            secret = handle.read().strip()
        if not secret:
            parser.error(f"secret file {args.secret_file!r} is empty")
    elif "REPRO_CLUSTER_SECRET" in os.environ:
        secret = os.environ["REPRO_CLUSTER_SECRET"]
        if not secret:
            parser.error("REPRO_CLUSTER_SECRET is set but empty")
    else:
        secret = None
    status = poll_fleet(args.workers, timeout=args.timeout, secret=secret)
    if args.json:
        print(json.dumps(status.to_dict(), indent=2, default=repr))
    else:
        print(status.format_table())
    return 0 if status.all_live else 1


if __name__ == "__main__":
    sys.exit(main())
