"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 517/660
builds fail; this file lets ``pip install -e .`` fall back to
``setup.py develop``.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
